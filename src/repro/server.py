"""``repro serve`` — a queueing campaign service over the engine.

A deliberately small asyncio front end (stdlib only) that turns the
supervised campaign runtime into a long-lived service:

* ``POST /campaign`` with a JSON body (``netlist`` text plus the usual
  sweep knobs) streams campaign progress back as NDJSON over HTTP/1.1
  chunked transfer — one JSON object per line: an ``accepted`` header,
  every ``campaign.*`` flight event as it happens, then a ``result``
  line with the coverage stats and the structured
  :class:`~repro.engine.supervisor.CampaignReport`.
* Identical requests are **coalesced**: an in-flight job is keyed by a
  content fingerprint of the request (netlist text + universe shape +
  execution knobs), and every later identical submission subscribes to
  the same execution instead of starting its own.  Completed campaigns
  additionally land in the process-wide content-addressed
  :data:`~repro.engine.store.STORE` (kind ``"campaign"``, keyed by
  compiled-program + universe fingerprints), so repeats after
  completion replay instantly — the hit rate is visible in
  ``/metrics``.
* ``GET /metrics`` serves the Prometheus text exposition of
  :data:`repro.obs.REGISTRY`; ``GET /healthz`` a JSON liveness probe.

Campaigns execute **strictly serialized** in one worker thread: the
tracing recorder and metrics registry are process-global, and the
supervised runtime already fans each campaign out across worker lanes,
so queueing jobs keeps the telemetry attributable without oversub-
scribing the machine.  Fairness comes from the dedup: the common
stampede (many clients, one netlist) is one execution, not a queue.
"""

from __future__ import annotations

import asyncio
import concurrent.futures
import contextlib
import hashlib
import json
import socket as socketlib
from typing import Dict, List, Optional, Tuple

from . import obs
from .engine.store import STORE, program_fingerprint, text_fingerprint
from .obs.recorder import MemoryRecorder

#: Request fields a client may set, with their defaults.  Anything else
#: in the body is rejected — silent typos ("transprot") would otherwise
#: dedup two requests the client believes are different.
REQUEST_DEFAULTS = {
    "backend": "auto",
    "processes": None,
    "transport": "auto",
    "timeout": None,
    "collapse": True,
    "statuses": False,
}

#: Upper bound on request bodies (netlists are text; 8 MiB is generous).
MAX_BODY_BYTES = 8 << 20

_REG = obs.REGISTRY
_M_REQUESTS = _REG.counter(
    "repro_serve_requests_total", "HTTP requests handled, by route"
)
_M_JOBS = _REG.counter(
    "repro_serve_jobs_total",
    "Campaign submissions, by disposition (executed/coalesced/replayed)",
)
_M_ACTIVE = _REG.gauge(
    "repro_serve_subscribers", "NDJSON subscribers currently connected"
)


class RequestError(ValueError):
    """A malformed campaign submission (maps to HTTP 400)."""


def canonical_request(body: dict) -> dict:
    """Validate a raw JSON body into the canonical request shape."""
    if not isinstance(body, dict):
        raise RequestError("request body must be a JSON object")
    netlist = body.get("netlist")
    if not isinstance(netlist, str) or not netlist.strip():
        raise RequestError("'netlist' must be non-empty .bench text")
    request = {"netlist": netlist}
    for key, default in REQUEST_DEFAULTS.items():
        request[key] = body.get(key, default)
    unknown = set(body) - set(request)
    if unknown:
        raise RequestError(
            f"unknown request field(s): {', '.join(sorted(unknown))}"
        )
    if request["processes"] is not None and (
        not isinstance(request["processes"], int) or request["processes"] < 1
    ):
        raise RequestError("'processes' must be an integer >= 1")
    return request


def request_fingerprint(request: dict) -> str:
    """Content identity of one submission: the dedup key for in-flight
    coalescing.  Statuses only depend on the netlist and the universe
    shape, but the *stream* a client receives also depends on the
    execution knobs, so all of them participate."""
    digest = hashlib.sha256()
    digest.update(text_fingerprint(request["netlist"]).encode())
    for key in sorted(REQUEST_DEFAULTS):
        digest.update(f"\x00{key}={request[key]!r}".encode())
    return digest.hexdigest()


class _BridgeRecorder(MemoryRecorder):
    """A recorder that additionally forwards ``campaign.*`` events from
    the executing thread into the event loop for live streaming."""

    def __init__(self, loop: asyncio.AbstractEventLoop, job: "_Job") -> None:
        super().__init__()
        self._loop = loop
        self._job = job

    def emit(self, event: dict) -> None:
        super().emit(event)
        name = event.get("name", "")
        if event.get("k") == "event" and name.startswith("campaign."):
            line = {"event": name, "t": event.get("t")}
            line.update(event.get("attrs") or {})
            self._loop.call_soon_threadsafe(self._job.publish, line)


class _Job:
    """One underlying campaign execution plus its subscriber fan-out."""

    def __init__(self, fingerprint: str, request: dict) -> None:
        self.fingerprint = fingerprint
        self.request = request
        self.subscribers: List[asyncio.Queue] = []
        self.history: List[dict] = []
        self.result: Optional[dict] = None
        self.done = asyncio.Event()

    def subscribe(self) -> asyncio.Queue:
        queue: asyncio.Queue = asyncio.Queue()
        for line in self.history:
            queue.put_nowait(line)
        if self.result is None:
            self.subscribers.append(queue)
        return queue

    def publish(self, line: dict) -> None:
        self.history.append(line)
        for queue in self.subscribers:
            queue.put_nowait(line)

    def finish(self, result: dict) -> None:
        self.result = result
        self.publish(dict(result, event="result"))
        self.subscribers = []
        self.done.set()


def _execute_campaign(request: dict, recorder) -> dict:
    """Run one campaign (worker-thread side) and shape the result line.

    Parses are deduped through the store (kind ``"network"`` by text
    fingerprint) so identical netlists share one ``Network`` instance —
    and therefore, via ``engine_for``, one compiled program and one
    cached baseline.  Completed status vectors land under kind
    ``"campaign"`` keyed purely by content (program + universe
    fingerprints + universe shape), so a replay does not even need the
    supervised runtime.
    """
    from .core.collapse import collapsed_single_faults
    from .engine import FaultSweep, universe_fingerprint
    from .logic.benchfmt import BenchFormatError, parse_bench

    text_fp = text_fingerprint(request["netlist"])
    network = STORE.get("network", text_fp)
    if network is None:
        try:
            network = parse_bench(request["netlist"], name="serve")
        except BenchFormatError as error:
            raise RequestError(f"netlist does not parse: {error}")
        STORE.put("network", text_fp, value=network)
    sweep = FaultSweep(network)
    if request["collapse"]:
        universe = list(collapsed_single_faults(network))
    else:
        universe = sweep.single_fault_universe()
    program_fp = program_fingerprint(sweep.compiled)
    universe_fp = universe_fingerprint(universe, sweep.n)
    shape = f"collapse={request['collapse']}"
    cached = STORE.get("campaign", program_fp, universe_fp, shape)
    if cached is not None:
        statuses, report_dict, backend = cached
        replayed = True
    else:
        with obs.recording(recorder=recorder):
            pairs = sweep.sweep(
                universe,
                processes=request["processes"],
                backend=request["backend"],
                timeout=request["timeout"],
                transport=request["transport"],
            )
        statuses = tuple(status for _fault, status in pairs)
        report_dict = sweep.last_report.to_dict()
        backend = sweep.last_sweep_backend
        STORE.put(
            "campaign",
            program_fp,
            universe_fp,
            shape,
            value=(statuses, report_dict, backend),
        )
        replayed = False
    counts = {"detected": 0, "silent": 0, "dangerous": 0}
    for status in statuses:
        counts[status] += 1
    total = max(len(statuses), 1)
    result = {
        "faults": len(statuses),
        "detected": counts["detected"] / total,
        "silent": counts["silent"] / total,
        "dangerous": counts["dangerous"] / total,
        "backend": backend,
        "replayed": replayed,
        "report": report_dict,
        "store": STORE.stats(),
    }
    if request["statuses"]:
        result["statuses"] = list(statuses)
    return result


class CampaignServer:
    """The asyncio HTTP front end.  One instance per process."""

    def __init__(
        self,
        host: str = "127.0.0.1",
        port: int = 8341,
        processes: Optional[int] = None,
        transport: str = "auto",
    ) -> None:
        self.host = host
        self.port = port
        self.default_processes = processes
        self.default_transport = transport
        self.jobs: Dict[str, _Job] = {}
        self.executions = 0
        self._server: Optional[asyncio.AbstractServer] = None
        # Strictly serialized: the recorder/metrics seams are
        # process-global, and each campaign already owns its own fan-out.
        self._executor = concurrent.futures.ThreadPoolExecutor(
            max_workers=1, thread_name_prefix="repro-serve"
        )

    # ------------------------------------------------------------------
    # lifecycle
    # ------------------------------------------------------------------
    async def start(self) -> None:
        STORE.enabled = True
        obs.enable_metrics(True)
        self._server = await asyncio.start_server(
            self._handle_connection, self.host, self.port
        )
        bound = self._server.sockets[0].getsockname()
        self.port = bound[1]

    async def close(self) -> None:
        if self._server is not None:
            self._server.close()
            await self._server.wait_closed()
        self._executor.shutdown(wait=False)

    # ------------------------------------------------------------------
    # job management
    # ------------------------------------------------------------------
    def submit(self, request: dict) -> Tuple[_Job, str]:
        """The job serving ``request`` and its disposition — a running
        identical job (``coalesced``) or a fresh one (``executed``)."""
        fingerprint = request_fingerprint(request)
        job = self.jobs.get(fingerprint)
        if job is not None and not job.done.is_set():
            _M_JOBS.inc(disposition="coalesced")
            return job, "coalesced"
        job = _Job(fingerprint, request)
        self.jobs[fingerprint] = job
        self.executions += 1
        _M_JOBS.inc(disposition="executed")
        loop = asyncio.get_running_loop()
        recorder = _BridgeRecorder(loop, job)

        def run() -> dict:
            return _execute_campaign(request, recorder)

        def finish(future: "asyncio.Future") -> None:
            error = future.exception()
            if error is not None:
                job.finish({"error": f"{type(error).__name__}: {error}"})
            else:
                result = future.result()
                if result.get("replayed"):
                    _M_JOBS.inc(disposition="replayed")
                job.finish(result)

        task = asyncio.ensure_future(
            loop.run_in_executor(self._executor, run)
        )
        task.add_done_callback(finish)
        return job, "executed"

    # ------------------------------------------------------------------
    # HTTP plumbing (deliberately minimal: two routes plus a health probe)
    # ------------------------------------------------------------------
    async def _handle_connection(self, reader, writer) -> None:
        try:
            request_line = await reader.readline()
            if not request_line:
                return
            try:
                method, path, _version = (
                    request_line.decode("latin-1").split(maxsplit=2)
                )
            except ValueError:
                await _respond(writer, 400, {"error": "bad request line"})
                return
            headers = {}
            while True:
                line = await reader.readline()
                if line in (b"\r\n", b"\n", b""):
                    break
                name, _sep, value = line.decode("latin-1").partition(":")
                headers[name.strip().lower()] = value.strip()
            _M_REQUESTS.inc(route=f"{method} {path}")
            if method == "GET" and path == "/metrics":
                await _respond_text(
                    writer,
                    200,
                    _REG.to_prometheus(),
                    content_type="text/plain; version=0.0.4",
                )
            elif method == "GET" and path == "/healthz":
                await _respond(
                    writer,
                    200,
                    {
                        "ok": True,
                        "jobs": len(self.jobs),
                        "executions": self.executions,
                        "store": STORE.stats(),
                    },
                )
            elif method == "POST" and path == "/campaign":
                await self._handle_campaign(reader, writer, headers)
            else:
                await _respond(
                    writer, 404, {"error": f"no route {method} {path}"}
                )
        except (ConnectionError, asyncio.IncompleteReadError):
            pass  # client went away; nothing to salvage
        finally:
            with contextlib.suppress(Exception):
                writer.close()
                await writer.wait_closed()

    async def _handle_campaign(self, reader, writer, headers) -> None:
        try:
            length = int(headers.get("content-length", "0"))
        except ValueError:
            await _respond(writer, 400, {"error": "bad Content-Length"})
            return
        if length <= 0 or length > MAX_BODY_BYTES:
            await _respond(
                writer,
                400,
                {"error": f"Content-Length must be in (0, {MAX_BODY_BYTES}]"},
            )
            return
        body = await reader.readexactly(length)
        try:
            request = canonical_request(json.loads(body))
        except json.JSONDecodeError as error:
            await _respond(writer, 400, {"error": f"bad JSON: {error}"})
            return
        except RequestError as error:
            await _respond(writer, 400, {"error": str(error)})
            return
        if request["processes"] is None:
            request["processes"] = self.default_processes
        if request["transport"] == "auto":
            request["transport"] = self.default_transport
        job, disposition = self.submit(request)
        queue = job.subscribe()
        _M_ACTIVE.inc()
        try:
            writer.write(
                b"HTTP/1.1 200 OK\r\n"
                b"Content-Type: application/x-ndjson\r\n"
                b"Transfer-Encoding: chunked\r\n"
                b"Connection: close\r\n\r\n"
            )
            await _send_chunk(
                writer,
                {
                    "event": "accepted",
                    "fingerprint": job.fingerprint,
                    "disposition": disposition,
                },
            )
            while True:
                line = await queue.get()
                await _send_chunk(writer, line)
                if line.get("event") == "result":
                    break
            writer.write(b"0\r\n\r\n")
            await writer.drain()
        finally:
            _M_ACTIVE.inc(-1)
            if queue in job.subscribers:
                job.subscribers.remove(queue)


async def _send_chunk(writer, payload: dict) -> None:
    data = (json.dumps(payload, sort_keys=True) + "\n").encode()
    writer.write(f"{len(data):x}\r\n".encode() + data + b"\r\n")
    await writer.drain()


async def _respond(writer, status: int, payload: dict) -> None:
    await _respond_text(
        writer,
        status,
        json.dumps(payload, sort_keys=True) + "\n",
        content_type="application/json",
    )


_REASONS = {200: "OK", 400: "Bad Request", 404: "Not Found"}


async def _respond_text(
    writer, status: int, text: str, content_type: str
) -> None:
    body = text.encode()
    reason = _REASONS.get(status, "OK")
    writer.write(
        f"HTTP/1.1 {status} {reason}\r\n"
        f"Content-Type: {content_type}\r\n"
        f"Content-Length: {len(body)}\r\n"
        f"Connection: close\r\n\r\n".encode() + body
    )
    await writer.drain()


async def _serve_forever(server: CampaignServer) -> None:
    await server.start()
    print(
        f"repro serve: listening on http://{server.host}:{server.port} "
        f"(POST /campaign, GET /metrics, GET /healthz)",
        flush=True,
    )
    try:
        await asyncio.Event().wait()
    finally:
        await server.close()


def serve(
    host: str = "127.0.0.1",
    port: int = 8341,
    processes: Optional[int] = None,
    transport: str = "auto",
) -> int:
    """Blocking entry point behind ``python -m repro serve``."""
    # Fail fast (and before asyncio swallows it) if the port is taken.
    if port:
        probe = socketlib.socket()
        try:
            probe.setsockopt(socketlib.SOL_SOCKET, socketlib.SO_REUSEADDR, 1)
            probe.bind((host, port))
        except OSError as error:
            print(f"repro serve: cannot bind {host}:{port}: {error}")
            return 2
        finally:
            probe.close()
    server = CampaignServer(
        host=host, port=port, processes=processes, transport=transport
    )
    try:
        asyncio.run(_serve_forever(server))
    except KeyboardInterrupt:
        pass
    return 0
