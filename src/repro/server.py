"""``repro serve`` — a crash-tolerant queueing campaign service.

A deliberately small asyncio front end (stdlib only) that turns the
supervised campaign runtime into a long-lived service:

* ``POST /campaign`` with a JSON body (``netlist`` text plus the usual
  sweep knobs) streams campaign progress back as NDJSON over HTTP/1.1
  chunked transfer — one JSON object per line: an ``accepted`` header,
  every ``campaign.*`` flight event as it happens, then a ``result``
  line with the coverage stats and the structured
  :class:`~repro.engine.supervisor.CampaignReport`.  A body with
  ``"kind": "synth"`` runs a synthesis/repair campaign instead
  (``spec`` from :data:`repro.synth.SPECS` for from-scratch search, or
  ``netlist`` for repair mode), streaming ``synth.*`` generation events
  and finishing with the structured
  :class:`~repro.synth.SynthReport`.
* Identical requests are **coalesced**: an in-flight job is keyed by a
  content fingerprint of the request (netlist text + universe shape +
  execution knobs), and every later identical submission subscribes to
  the same execution instead of starting its own.  Completed campaigns
  additionally land in the process-wide content-addressed
  :data:`~repro.engine.store.STORE` (kind ``"campaign"``, keyed by
  compiled-program + universe fingerprints), so repeats after
  completion replay instantly — the hit rate is visible in
  ``/metrics``.
* ``GET /metrics`` serves the Prometheus text exposition of
  :data:`repro.obs.REGISTRY`; ``GET /healthz`` is a pure **liveness**
  probe (200 for as long as the process can answer), ``GET /readyz``
  the **readiness** probe (503 while draining — take the instance out
  of rotation without killing in-flight streams).

The service supervises itself with the same discipline the campaign
runtime applies to its workers:

* **Admission control** — campaigns run on a bounded worker pool
  (``workers`` threads; each campaign still owns its own transport
  fan-out) behind a bounded accept queue.  When ``workers +
  queue_limit`` jobs are outstanding, new *distinct* submissions are
  shed with ``429 + Retry-After`` instead of queueing unboundedly
  (coalescing onto an existing identical job is always admitted — it
  adds no work).  Shed counts and queue depth are exported.
* **Deadlines & cancellation** — every execution carries a
  :class:`~repro.engine.supervisor.CancelToken` threaded into the
  supervision poll loop.  A per-request ``deadline_s`` (or the server
  default), the last subscriber disconnecting mid-stream, or a drain
  fires the token; the campaign stops and frees its transport lanes
  within one poll interval, recording a ``campaign.cancelled`` flight
  event.
* **Graceful drain** — SIGTERM/SIGINT stops the listener, lets
  in-flight jobs finish against ``drain_timeout``, then cancels the
  stragglers (their checkpoints survive) and exits.
* **Durable request journal** — with a state directory configured,
  every accepted request is appended (fsync'd) to an append-only JSONL
  write-ahead journal before it executes, and marked done after.
  ``repro serve --recover`` replays accepted-but-unfinished requests on
  restart, resuming each campaign from its supervisor checkpoint, so a
  ``kill -9`` loses no accepted work and the replayed statuses are
  byte-identical to an uninterrupted run.

Per-job memory is bounded too: the finished-job table is a pruned LRU
(completed results replay from the content-addressed store, not from
this table) and every subscriber queue drops its oldest *progress* line
when a slow NDJSON client falls behind — the terminal ``result`` line
is never dropped.
"""

from __future__ import annotations

import asyncio
import concurrent.futures
import contextlib
import hashlib
import json
import os
import signal as signallib
import socket as socketlib
import threading
import time
from collections import OrderedDict
from typing import Dict, List, Optional, Tuple

from . import obs
from .engine.store import STORE, program_fingerprint, text_fingerprint
from .engine.supervisor import CampaignCancelled, CancelToken, CheckpointError
from .obs.recorder import MemoryRecorder

#: Request fields a client may set, with their defaults.  Anything else
#: in the body is rejected — silent typos ("transprot") would otherwise
#: dedup two requests the client believes are different.
REQUEST_DEFAULTS = {
    "kind": "campaign",
    "backend": "auto",
    "processes": None,
    "transport": "auto",
    "timeout": None,
    "collapse": True,
    "statuses": False,
    "deadline_s": None,
    # kind == "synth" only:
    "spec": None,
    "seed": 0,
    "population": 24,
    "generations": 40,
    "max_gates": 16,
    "damage": 3,
}

#: Fields that only make sense on ``kind == "synth"`` bodies; a
#: campaign submission setting them is rejected rather than silently
#: forked into a distinct fingerprint.
_SYNTH_ONLY = ("spec", "seed", "population", "generations", "max_gates", "damage")

#: Upper bound on request bodies (netlists are text; 8 MiB is generous).
MAX_BODY_BYTES = 8 << 20

#: How often the drain loop re-checks for in-flight jobs (seconds).
DRAIN_POLL_SECONDS = 0.05

#: Grace period after drain-cancelling stragglers: cooperative
#: cancellation lands within one supervision poll interval, so this only
#: needs to cover the chunk currently in flight.
DRAIN_CANCEL_GRACE_SECONDS = 5.0

_REG = obs.REGISTRY
_M_REQUESTS = _REG.counter(
    "repro_serve_requests_total", "HTTP requests handled, by route"
)
_M_JOBS = _REG.counter(
    "repro_serve_jobs_total",
    "Campaign submissions, by disposition (executed/coalesced/replayed)",
)
_M_ACTIVE = _REG.gauge(
    "repro_serve_subscribers", "NDJSON subscribers currently connected"
)
_M_SHED = _REG.counter(
    "repro_serve_shed_total",
    "Submissions shed by admission control, by reason",
)
_M_QUEUE_DEPTH = _REG.gauge(
    "repro_serve_queue_depth", "Accepted jobs waiting for a worker thread"
)
_M_CANCELLED = _REG.counter(
    "repro_serve_cancelled_total", "Campaigns cancelled, by reason kind"
)
_M_EVICTED = _REG.counter(
    "repro_serve_jobs_evicted_total", "Finished jobs pruned from the LRU"
)
_M_DROPS = _REG.counter(
    "repro_serve_subscriber_drops_total",
    "Progress lines dropped for slow subscribers, by buffer",
)
_M_READ_TIMEOUTS = _REG.counter(
    "repro_serve_read_timeouts_total",
    "Connections dropped by the slow-client guard (HTTP 408)",
)
_M_JOURNAL = _REG.counter(
    "repro_serve_journal_records_total", "Journal appends, by record op"
)
_M_RECOVERED = _REG.counter(
    "repro_serve_recovered_total", "Journaled requests replayed on recovery"
)


class RequestError(ValueError):
    """A malformed campaign submission (maps to HTTP 400)."""


def canonical_request(body: dict) -> dict:
    """Validate a raw JSON body into the canonical request shape."""
    if not isinstance(body, dict):
        raise RequestError("request body must be a JSON object")
    netlist = body.get("netlist")
    request = {"netlist": netlist}
    for key, default in REQUEST_DEFAULTS.items():
        request[key] = body.get(key, default)
    unknown = set(body) - set(request)
    if unknown:
        raise RequestError(
            f"unknown request field(s): {', '.join(sorted(unknown))}"
        )
    kind = request["kind"]
    if kind not in ("campaign", "synth"):
        raise RequestError("'kind' must be 'campaign' or 'synth'")
    has_netlist = isinstance(netlist, str) and bool(netlist.strip())
    if kind == "campaign":
        if not has_netlist:
            raise RequestError("'netlist' must be non-empty .bench text")
        for key in _SYNTH_ONLY:
            if request[key] != REQUEST_DEFAULTS[key]:
                raise RequestError(
                    f"'{key}' applies only to kind 'synth'"
                )
    else:
        if netlist is not None and not has_netlist:
            raise RequestError("'netlist' must be non-empty .bench text")
        if (request["spec"] is None) == (not has_netlist):
            raise RequestError(
                "kind 'synth' needs exactly one of 'spec' "
                "(from-scratch) or 'netlist' (repair mode)"
            )
        if request["spec"] is not None:
            from .synth import SPECS

            if request["spec"] not in SPECS:
                raise RequestError(
                    f"unknown spec {request['spec']!r}; known: "
                    f"{', '.join(sorted(SPECS))}"
                )
        for key, floor in (
            ("seed", 0),
            ("population", 2),
            ("generations", 1),
            ("max_gates", 1),
            ("damage", 1),
        ):
            value = request[key]
            if (
                not isinstance(value, int)
                or isinstance(value, bool)
                or value < floor
            ):
                raise RequestError(f"'{key}' must be an integer >= {floor}")
    if request["processes"] is not None and (
        not isinstance(request["processes"], int) or request["processes"] < 1
    ):
        raise RequestError("'processes' must be an integer >= 1")
    if request["deadline_s"] is not None and (
        not isinstance(request["deadline_s"], (int, float))
        or isinstance(request["deadline_s"], bool)
        or request["deadline_s"] <= 0
    ):
        raise RequestError("'deadline_s' must be a number > 0")
    return request


def request_fingerprint(request: dict) -> str:
    """Content identity of one submission: the dedup key for in-flight
    coalescing.  Statuses only depend on the netlist and the universe
    shape, but the *stream* a client receives also depends on the
    execution knobs, so all of them participate."""
    digest = hashlib.sha256()
    digest.update(text_fingerprint(request["netlist"] or "").encode())
    for key in sorted(REQUEST_DEFAULTS):
        digest.update(f"\x00{key}={request[key]!r}".encode())
    return digest.hexdigest()


# ----------------------------------------------------------------------
# durable request journal
# ----------------------------------------------------------------------
class RequestJournal:
    """Append-only JSONL write-ahead journal of accepted requests.

    Two record shapes, one per line: ``{"op": "accepted",
    "fingerprint": ..., "request": {...}}`` written (and fsync'd)
    *before* a campaign executes, and ``{"op": "done", "fingerprint":
    ..., "outcome": {...}}`` after it finishes (successfully, with an
    error, or cancelled for good — a drain cancellation is deliberately
    *not* marked done, so the work survives the restart).  Recovery
    replays every accepted record without a matching done.

    The journal lives in a state directory alongside one supervisor
    checkpoint per in-flight request (``ckpt-<fingerprint>.json``), so
    a recovered campaign resumes from its completed chunks instead of
    starting over — statuses are byte-identical either way.  A partial
    final line (the crash landed mid-append) is skipped on read; the
    journal is compacted to just the pending records on recovery.
    """

    def __init__(self, directory: str) -> None:
        self.directory = directory
        self.path = os.path.join(directory, "journal.jsonl")
        self._handle = None
        self._lock = threading.Lock()

    def open(self) -> None:
        os.makedirs(self.directory, exist_ok=True)
        self._handle = open(self.path, "a")

    def close(self) -> None:
        with self._lock:
            if self._handle is not None:
                self._handle.close()
                self._handle = None

    def checkpoint_path(self, fingerprint: str) -> str:
        return os.path.join(self.directory, f"ckpt-{fingerprint}.json")

    def _append(self, record: dict) -> None:
        with self._lock:
            if self._handle is None:  # pragma: no cover - closed journal
                return
            self._handle.write(json.dumps(record, sort_keys=True) + "\n")
            self._handle.flush()
            os.fsync(self._handle.fileno())
        _M_JOURNAL.inc(op=record["op"])

    def accepted(self, fingerprint: str, request: dict) -> None:
        self._append(
            {"op": "accepted", "fingerprint": fingerprint, "request": request}
        )

    def done(self, fingerprint: str, outcome: dict) -> None:
        self._append(
            {"op": "done", "fingerprint": fingerprint, "outcome": outcome}
        )

    def records(self) -> List[dict]:
        """Every parseable record, tolerating a torn final line."""
        records: List[dict] = []
        try:
            with open(self.path) as handle:
                for line in handle:
                    try:
                        record = json.loads(line)
                    except ValueError:
                        continue  # torn append from a crash mid-write
                    if isinstance(record, dict):
                        records.append(record)
        except FileNotFoundError:
            pass
        return records

    def load_pending(self) -> "OrderedDict[str, dict]":
        """Accepted-but-unfinished requests, in acceptance order."""
        pending: "OrderedDict[str, dict]" = OrderedDict()
        for record in self.records():
            fingerprint = record.get("fingerprint")
            if not isinstance(fingerprint, str):
                continue
            if record.get("op") == "accepted" and isinstance(
                record.get("request"), dict
            ):
                pending[fingerprint] = record["request"]
            elif record.get("op") == "done":
                pending.pop(fingerprint, None)
        return pending

    def compact(self, pending: "OrderedDict[str, dict]") -> None:
        """Atomically rewrite the journal to just ``pending`` (recovery
        startup: done work and torn lines are dropped for good)."""
        tmp = f"{self.path}.tmp"
        with open(tmp, "w") as handle:
            for fingerprint, request in pending.items():
                handle.write(
                    json.dumps(
                        {
                            "op": "accepted",
                            "fingerprint": fingerprint,
                            "request": request,
                        },
                        sort_keys=True,
                    )
                    + "\n"
                )
            handle.flush()
            os.fsync(handle.fileno())
        os.replace(tmp, self.path)
        with self._lock:
            if self._handle is not None:
                self._handle.close()
            self._handle = open(self.path, "a")


class _BridgeRecorder(MemoryRecorder):
    """A recorder that additionally forwards ``campaign.*`` and
    ``synth.*`` events from the executing thread into the event loop
    for live streaming."""

    def __init__(self, loop: asyncio.AbstractEventLoop, job: "_Job") -> None:
        super().__init__()
        self._loop = loop
        self._job = job

    def emit(self, event: dict) -> None:
        super().emit(event)
        name = event.get("name", "")
        if event.get("k") == "event" and name.startswith(
            ("campaign.", "synth.")
        ):
            line = {"event": name, "t": event.get("t")}
            line.update(event.get("attrs") or {})
            self._loop.call_soon_threadsafe(self._job.publish, line)


class _Job:
    """One underlying campaign execution plus its subscriber fan-out.

    ``cancel`` is the job's :class:`CancelToken` (deadline armed at
    submit time); ``detached`` marks journal-recovery replays, which
    legitimately run with no subscribers and must not be cancelled for
    it.  Both the shared history and every subscriber queue are bounded
    to ``queue_limit`` lines with a drop-oldest-progress policy: the
    terminal ``result`` line is published last and therefore always
    survives.
    """

    def __init__(
        self,
        fingerprint: str,
        request: dict,
        cancel: CancelToken,
        queue_limit: int = 256,
        detached: bool = False,
    ) -> None:
        self.fingerprint = fingerprint
        self.request = request
        self.cancel = cancel
        self.detached = detached
        self.queue_limit = max(int(queue_limit), 2)
        self.subscribers: List[asyncio.Queue] = []
        self.history: List[dict] = []
        self.result: Optional[dict] = None
        self.done = asyncio.Event()

    def subscribe(self) -> asyncio.Queue:
        queue: asyncio.Queue = asyncio.Queue()
        for line in self.history:
            queue.put_nowait(line)
        if self.result is None:
            self.subscribers.append(queue)
        return queue

    def unsubscribe(self, queue: asyncio.Queue) -> None:
        """Detach one subscriber; the last one leaving a live job
        cancels the now-orphaned campaign (nobody is listening, and a
        late identical request replays from the store anyway)."""
        if queue in self.subscribers:
            self.subscribers.remove(queue)
        if not self.subscribers and not self.done.is_set() and not self.detached:
            self.cancel.cancel("all subscribers disconnected")

    def publish(self, line: dict) -> None:
        self.history.append(line)
        if len(self.history) > self.queue_limit:
            self.history.pop(0)
            _M_DROPS.inc(buffer="history")
        for queue in self.subscribers:
            if queue.qsize() >= self.queue_limit:
                with contextlib.suppress(asyncio.QueueEmpty):
                    queue.get_nowait()
                    _M_DROPS.inc(buffer="subscriber")
            queue.put_nowait(line)

    def finish(self, result: dict) -> None:
        self.result = result
        self.publish(dict(result, event="result"))
        self.subscribers = []
        self.done.set()


def _execute_campaign(
    request: dict,
    recorder,
    cancel: Optional[CancelToken] = None,
    checkpoint: Optional[str] = None,
    resume: bool = False,
) -> dict:
    """Run one campaign (worker-thread side) and shape the result line.

    Parses are deduped through the store (kind ``"network"`` by text
    fingerprint) so identical netlists share one ``Network`` instance —
    and therefore, via ``engine_for``, one compiled program and one
    cached baseline.  Completed status vectors land under kind
    ``"campaign"`` keyed purely by content (program + universe
    fingerprints + universe shape), so a replay does not even need the
    supervised runtime.

    ``checkpoint``/``resume`` ride the journal's state directory: a
    recovered request resumes from the chunks its interrupted run
    already completed (an unusable checkpoint falls back to a fresh
    run — statuses are deterministic either way).
    """
    from .core.collapse import collapsed_single_faults
    from .engine import FaultSweep, universe_fingerprint
    from .logic.benchfmt import BenchFormatError, parse_bench

    if cancel is not None:
        cancel.check()
    text_fp = text_fingerprint(request["netlist"])
    network = STORE.get("network", text_fp)
    if network is None:
        try:
            network = parse_bench(request["netlist"], name="serve")
        except BenchFormatError as error:
            raise RequestError(f"netlist does not parse: {error}")
        STORE.put("network", text_fp, value=network)
    sweep = FaultSweep(network)
    if request["collapse"]:
        universe = list(collapsed_single_faults(network))
    else:
        universe = sweep.single_fault_universe()
    program_fp = program_fingerprint(sweep.compiled)
    universe_fp = universe_fingerprint(universe, sweep.n)
    shape = f"collapse={request['collapse']}"
    cached = STORE.get("campaign", program_fp, universe_fp, shape)
    if cached is not None:
        statuses, report_dict, backend = cached
        replayed = True
    else:
        with obs.recording(recorder=recorder):
            try:
                pairs = sweep.sweep(
                    universe,
                    processes=request["processes"],
                    backend=request["backend"],
                    timeout=request["timeout"],
                    transport=request["transport"],
                    checkpoint=checkpoint,
                    resume=resume,
                    cancel=cancel,
                )
            except CheckpointError:
                # The checkpoint is torn or belongs to an older universe:
                # run fresh — determinism makes the statuses identical.
                pairs = sweep.sweep(
                    universe,
                    processes=request["processes"],
                    backend=request["backend"],
                    timeout=request["timeout"],
                    transport=request["transport"],
                    checkpoint=checkpoint,
                    cancel=cancel,
                )
        statuses = tuple(status for _fault, status in pairs)
        report_dict = sweep.last_report.to_dict()
        backend = sweep.last_sweep_backend
        STORE.put(
            "campaign",
            program_fp,
            universe_fp,
            shape,
            value=(statuses, report_dict, backend),
        )
        replayed = False
    counts = {"detected": 0, "silent": 0, "dangerous": 0}
    for status in statuses:
        counts[status] += 1
    total = max(len(statuses), 1)
    result = {
        "faults": len(statuses),
        "detected": counts["detected"] / total,
        "silent": counts["silent"] / total,
        "dangerous": counts["dangerous"] / total,
        "backend": backend,
        "replayed": replayed,
        "report": report_dict,
        "store": STORE.stats(),
    }
    if request["statuses"]:
        result["statuses"] = list(statuses)
    return result


def _execute_synth(
    request: dict,
    recorder,
    cancel: Optional[CancelToken] = None,
    checkpoint: Optional[str] = None,
    resume: bool = False,
) -> dict:
    """Run one synthesis/repair campaign (worker-thread side).

    The same store/journal discipline as sweeps: a finished search is
    cached under kind ``"synth"`` keyed by the target identity (spec
    fingerprint, or the netlist text fingerprint in repair mode) plus
    the search knobs, so an identical resubmission replays without
    touching the generational runtime; a journal-recovered request
    resumes from its :class:`~repro.synth.SynthCheckpoint` (an
    unusable checkpoint falls back to a fresh run — the search is a
    pure function of the seed, so the winner is identical either way).
    """
    from .logic.benchfmt import BenchFormatError, parse_bench
    from .synth import SPECS, SynthCampaign, repair_campaign

    if cancel is not None:
        cancel.check()
    network = None
    if request["spec"] is not None:
        spec = SPECS[request["spec"]]
        target_fp = spec.fingerprint()
    else:
        text_fp = text_fingerprint(request["netlist"])
        network = STORE.get("network", text_fp)
        if network is None:
            try:
                network = parse_bench(request["netlist"], name="serve")
            except BenchFormatError as error:
                raise RequestError(f"netlist does not parse: {error}")
            STORE.put("network", text_fp, value=network)
        target_fp = text_fp
    shape = (
        f"seed={request['seed']},population={request['population']},"
        f"generations={request['generations']},"
        f"max_gates={request['max_gates']},damage={request['damage']}"
    )
    cached = STORE.get("synth", target_fp, shape)
    if cached is not None:
        result = dict(cached)
        result["replayed"] = True
        result["store"] = STORE.stats()
        return result

    def build(resume_flag: bool):
        common = dict(
            seed=request["seed"],
            population=request["population"],
            generations=request["generations"],
            max_gates=request["max_gates"],
            processes=request["processes"],
            timeout=request["timeout"],
            transport=request["transport"],
            checkpoint=checkpoint,
            resume=resume_flag,
            cancel=cancel,
        )
        if network is None:
            return SynthCampaign(spec, **common)
        return repair_campaign(network, damage=request["damage"], **common)

    with obs.recording(recorder=recorder):
        try:
            report = build(resume).run()
        except CheckpointError:
            # Torn checkpoint or a config mismatch: run fresh — the
            # deterministic search converges on the same winner.
            report = build(False).run()
    report_dict = report.to_dict()
    result = {
        "kind": "synth",
        "spec": report.spec,
        "seed": report.seed,
        "mode": report.mode,
        "converged": report.converged,
        "generations": report.generations_run,
        "evaluations": report.evaluations,
        "best_score": report.best_record.score,
        "best_fingerprint": report.best_fingerprint,
        "best_genome": json.loads(report.best_genome),
        "pareto": report.pareto,
        "replayed": False,
        "report": report_dict,
    }
    STORE.put(
        "synth",
        target_fp,
        shape,
        value={key: value for key, value in result.items() if key != "store"},
    )
    result["store"] = STORE.stats()
    return result


def _cancel_kind(reason: str) -> str:
    if reason.startswith("deadline exceeded"):
        return "deadline"
    if reason.startswith("all subscribers"):
        return "abandoned"
    if reason.startswith("server draining"):
        return "drain"
    return "other"


class CampaignServer:
    """The asyncio HTTP front end.  One instance per process."""

    def __init__(
        self,
        host: str = "127.0.0.1",
        port: int = 8341,
        processes: Optional[int] = None,
        transport: str = "auto",
        workers: int = 2,
        queue_limit: int = 8,
        deadline_s: Optional[float] = None,
        drain_timeout: float = 10.0,
        state_dir: Optional[str] = None,
        recover: bool = False,
        max_jobs: int = 64,
        subscriber_queue: int = 256,
        read_timeout: float = 10.0,
    ) -> None:
        self.host = host
        self.port = port
        self.default_processes = processes
        self.default_transport = transport
        self.workers = max(int(workers), 1)
        self.queue_limit = max(int(queue_limit), 0)
        self.default_deadline_s = deadline_s
        self.drain_timeout = drain_timeout
        self.max_jobs = max(int(max_jobs), 1)
        self.subscriber_queue = subscriber_queue
        self.read_timeout = read_timeout
        self.recover = recover
        self.journal = RequestJournal(state_dir) if state_dir else None
        self.jobs: "OrderedDict[str, _Job]" = OrderedDict()
        self.executions = 0
        self.recovered = 0
        self.draining = False
        self._server: Optional[asyncio.AbstractServer] = None
        # A bounded pool: the recorder/metrics seams are process-global
        # but per-job recorders keep flights attributable, and each
        # campaign owns its own transport fan-out, so a small number of
        # concurrent campaigns shares the machine without oversubscribing.
        self._executor = concurrent.futures.ThreadPoolExecutor(
            max_workers=self.workers, thread_name_prefix="repro-serve"
        )

    # ------------------------------------------------------------------
    # lifecycle
    # ------------------------------------------------------------------
    async def start(self) -> None:
        STORE.enabled = True
        obs.enable_metrics(True)
        if self.journal is not None:
            self.journal.open()
            if self.recover:
                self._recover_journal()
        self._server = await asyncio.start_server(
            self._handle_connection, self.host, self.port
        )
        bound = self._server.sockets[0].getsockname()
        self.port = bound[1]

    def _recover_journal(self) -> None:
        """Replay accepted-but-unfinished journal records as detached
        jobs (no subscribers; results land in the store and the journal
        done records)."""
        pending = self.journal.load_pending()
        self.journal.compact(pending)
        for fingerprint, raw in pending.items():
            try:
                request = canonical_request(raw)
            except RequestError as error:
                self.journal.done(
                    fingerprint,
                    {"ok": False, "error": f"unreplayable record: {error}"},
                )
                continue
            self.recovered += 1
            _M_RECOVERED.inc()
            obs.event("serve.recovered", fingerprint=fingerprint)
            self.submit(request, detached=True)

    async def drain(self, timeout: Optional[float] = None) -> None:
        """Stop accepting work, wait for in-flight jobs against the
        drain timeout, then cancel the stragglers (their checkpoints —
        and, with a journal, their accepted records — survive for a
        ``--recover`` restart)."""
        if self.draining:
            return
        self.draining = True
        obs.event("serve.drain", jobs=self._outstanding())
        # The listener stays up: /healthz and /readyz must remain
        # answerable while draining (that is the point of the split) and
        # new POSTs are shed with 503 by admission control.  close()
        # tears the listener down after the drain completes.
        budget = self.drain_timeout if timeout is None else timeout
        deadline = time.monotonic() + max(budget, 0.0)
        while self._outstanding() and time.monotonic() < deadline:
            await asyncio.sleep(DRAIN_POLL_SECONDS)
        for job in self.jobs.values():
            if not job.done.is_set():
                job.cancel.cancel("server draining")
        grace = time.monotonic() + DRAIN_CANCEL_GRACE_SECONDS
        while self._outstanding() and time.monotonic() < grace:
            await asyncio.sleep(DRAIN_POLL_SECONDS)

    async def close(self) -> None:
        """Immediate shutdown: drain with a zero wait (in-flight jobs
        are cancelled, not awaited), then release the pool and journal."""
        await self.drain(timeout=0.0)
        if self._server is not None:
            self._server.close()
            await self._server.wait_closed()
        self._executor.shutdown(wait=False)
        if self.journal is not None:
            self.journal.close()

    # ------------------------------------------------------------------
    # job management
    # ------------------------------------------------------------------
    def _outstanding(self) -> int:
        return sum(1 for job in self.jobs.values() if not job.done.is_set())

    def _set_queue_gauge(self) -> None:
        _M_QUEUE_DEPTH.set(max(self._outstanding() - self.workers, 0))

    def _prune_jobs(self) -> None:
        """Bound the job table: evict the oldest *finished* jobs beyond
        ``max_jobs`` (their results replay from the content-addressed
        store; the table only carries live fan-out state)."""
        if len(self.jobs) <= self.max_jobs:
            return
        for fingerprint in [
            fp for fp, job in self.jobs.items() if job.done.is_set()
        ]:
            if len(self.jobs) <= self.max_jobs:
                break
            del self.jobs[fingerprint]
            _M_EVICTED.inc()

    def submit(self, request: dict, detached: bool = False) -> Tuple[_Job, str]:
        """The job serving ``request`` and its disposition — a running
        identical job (``coalesced``) or a fresh one (``executed``)."""
        fingerprint = request_fingerprint(request)
        job = self.jobs.get(fingerprint)
        if job is not None and not job.done.is_set():
            _M_JOBS.inc(disposition="coalesced")
            return job, "coalesced"
        deadline_s = request.get("deadline_s")
        if deadline_s is None:
            deadline_s = self.default_deadline_s
        cancel = CancelToken(deadline_s=deadline_s)
        job = _Job(
            fingerprint,
            request,
            cancel,
            queue_limit=self.subscriber_queue,
            detached=detached,
        )
        self.jobs[fingerprint] = job
        self.jobs.move_to_end(fingerprint)
        self.executions += 1
        _M_JOBS.inc(disposition="executed")
        checkpoint = resume = None
        if self.journal is not None:
            if not detached:
                # WAL discipline: the accepted record is durable before
                # any work happens, so a crash between here and the
                # result can always be replayed.
                self.journal.accepted(fingerprint, request)
            checkpoint = self.journal.checkpoint_path(fingerprint)
            resume = os.path.exists(checkpoint)
        self._set_queue_gauge()
        loop = asyncio.get_running_loop()
        recorder = _BridgeRecorder(loop, job)

        execute = (
            _execute_synth
            if request.get("kind") == "synth"
            else _execute_campaign
        )

        def run() -> dict:
            return execute(
                request,
                recorder,
                cancel=cancel,
                checkpoint=checkpoint,
                resume=bool(resume),
            )

        def finish(future: "asyncio.Future") -> None:
            error = future.exception()
            if error is None:
                result = future.result()
                if result.get("replayed"):
                    _M_JOBS.inc(disposition="replayed")
                job.finish(result)
                self._finalize(fingerprint, job, result, None)
            else:
                job.finish(self._shape_error(error))
                self._finalize(fingerprint, job, None, error)
            self._set_queue_gauge()
            self._prune_jobs()

        task = asyncio.ensure_future(
            loop.run_in_executor(self._executor, run)
        )
        task.add_done_callback(finish)
        return job, "executed"

    def _shape_error(self, error: BaseException) -> dict:
        if isinstance(error, CampaignCancelled):
            reason = str(error)
            _M_CANCELLED.inc(kind=_cancel_kind(reason))
            return {"error": f"cancelled: {reason}", "cancelled": True}
        return {"error": f"{type(error).__name__}: {error}"}

    def _finalize(
        self,
        fingerprint: str,
        job: _Job,
        result: Optional[dict],
        error: Optional[BaseException],
    ) -> None:
        """Journal the outcome and clean the checkpoint up.  A
        drain-cancelled job stays *pending* in the journal (and keeps
        its checkpoint): that is exactly the work ``--recover`` must
        finish after the restart."""
        if self.journal is None:
            return
        checkpoint = self.journal.checkpoint_path(fingerprint)
        if error is None:
            if result.get("kind") == "synth":
                keys = (
                    "converged",
                    "generations",
                    "evaluations",
                    "best_score",
                    "best_fingerprint",
                    "replayed",
                )
            else:
                keys = (
                    "faults",
                    "detected",
                    "silent",
                    "dangerous",
                    "backend",
                    "replayed",
                )
            outcome = {key: result.get(key) for key in keys}
            outcome["ok"] = True
            self.journal.done(fingerprint, outcome)
            with contextlib.suppress(OSError):
                os.remove(checkpoint)
            return
        if (
            isinstance(error, CampaignCancelled)
            and _cancel_kind(str(error)) == "drain"
        ):
            return  # still pending: survives for --recover
        outcome = {"ok": False, "error": f"{type(error).__name__}: {error}"}
        if isinstance(error, CampaignCancelled):
            outcome["cancelled"] = str(error)
        self.journal.done(fingerprint, outcome)

    # ------------------------------------------------------------------
    # HTTP plumbing (four routes: campaign, metrics, healthz, readyz)
    # ------------------------------------------------------------------
    async def _read_head(self, reader) -> Optional[Tuple[str, str, dict]]:
        request_line = await reader.readline()
        if not request_line:
            return None
        try:
            method, path, _version = (
                request_line.decode("latin-1").split(maxsplit=2)
            )
        except ValueError:
            raise RequestError("bad request line")
        headers: dict = {}
        while True:
            line = await reader.readline()
            if line in (b"\r\n", b"\n", b""):
                break
            name, _sep, value = line.decode("latin-1").partition(":")
            headers[name.strip().lower()] = value.strip()
        return method, path, headers

    async def _handle_connection(self, reader, writer) -> None:
        try:
            try:
                head = await asyncio.wait_for(
                    self._read_head(reader), self.read_timeout
                )
            except asyncio.TimeoutError:
                _M_READ_TIMEOUTS.inc(phase="head")
                await _respond(
                    writer,
                    408,
                    {
                        "error": f"request head not received within "
                        f"{self.read_timeout:g}s"
                    },
                )
                return
            except RequestError as error:
                await _respond(writer, 400, {"error": str(error)})
                return
            if head is None:
                return
            method, path, headers = head
            _M_REQUESTS.inc(route=f"{method} {path}")
            if method == "GET" and path == "/metrics":
                await _respond_text(
                    writer,
                    200,
                    _REG.to_prometheus(),
                    content_type="text/plain; version=0.0.4",
                )
            elif method == "GET" and path == "/healthz":
                # Liveness only: a draining server is still alive.
                await _respond(writer, 200, self._health())
            elif method == "GET" and path == "/readyz":
                if self.draining:
                    await _respond(
                        writer,
                        503,
                        {"ready": False, "draining": True},
                        retry_after=self.drain_timeout,
                    )
                else:
                    await _respond(writer, 200, {"ready": True})
            elif method == "POST" and path == "/campaign":
                await self._handle_campaign(reader, writer, headers)
            else:
                await _respond(
                    writer, 404, {"error": f"no route {method} {path}"}
                )
        except (ConnectionError, asyncio.IncompleteReadError):
            pass  # client went away; nothing to salvage
        finally:
            with contextlib.suppress(Exception):
                writer.close()
                await writer.wait_closed()

    def _health(self) -> dict:
        return {
            "ok": True,
            "draining": self.draining,
            "jobs": len(self.jobs),
            "running": self._outstanding(),
            "executions": self.executions,
            "recovered": self.recovered,
            "replaying": sum(
                1
                for job in self.jobs.values()
                if job.detached and not job.done.is_set()
            ),
            "store": STORE.stats(),
        }

    async def _handle_campaign(self, reader, writer, headers) -> None:
        try:
            length = int(headers.get("content-length", "0"))
        except ValueError:
            await _respond(writer, 400, {"error": "bad Content-Length"})
            return
        if length <= 0 or length > MAX_BODY_BYTES:
            await _respond(
                writer,
                400,
                {"error": f"Content-Length must be in (0, {MAX_BODY_BYTES}]"},
            )
            return
        try:
            body = await asyncio.wait_for(
                reader.readexactly(length), self.read_timeout
            )
        except asyncio.TimeoutError:
            _M_READ_TIMEOUTS.inc(phase="body")
            await _respond(
                writer,
                408,
                {
                    "error": f"request body not received within "
                    f"{self.read_timeout:g}s"
                },
            )
            return
        try:
            request = canonical_request(json.loads(body))
        except json.JSONDecodeError as error:
            await _respond(writer, 400, {"error": f"bad JSON: {error}"})
            return
        except RequestError as error:
            await _respond(writer, 400, {"error": str(error)})
            return
        if request["processes"] is None:
            request["processes"] = self.default_processes
        if request["transport"] == "auto":
            request["transport"] = self.default_transport

        # Admission control.  Coalescing onto a live identical job is
        # always admitted (it adds no work); everything else is checked
        # against the drain flag and the bounded accept queue.
        if self.draining:
            _M_SHED.inc(reason="draining")
            await _respond(
                writer,
                503,
                {"error": "server is draining"},
                retry_after=max(self.drain_timeout, 1.0),
            )
            return
        live = self.jobs.get(request_fingerprint(request))
        coalescing = live is not None and not live.done.is_set()
        outstanding = self._outstanding()
        if not coalescing and outstanding >= self.workers + self.queue_limit:
            retry_after = max(1, min(30, outstanding - self.workers + 1))
            _M_SHED.inc(reason="queue-full")
            obs.event("serve.shed", outstanding=outstanding)
            await _respond(
                writer,
                429,
                {
                    "error": f"{outstanding} campaigns already outstanding "
                    f"(workers={self.workers}, queue={self.queue_limit}); "
                    f"retry later",
                    "retry_after_s": retry_after,
                },
                retry_after=retry_after,
            )
            return

        job, disposition = self.submit(request)
        queue = job.subscribe()
        _M_ACTIVE.inc()
        # EOF watch: a POST client sends nothing after the body, so a
        # completed read means it disconnected — the stream loop races
        # this against the next queue line and cancels orphaned work.
        eof_task = asyncio.ensure_future(reader.read(1))
        get_task: Optional[asyncio.Future] = None
        try:
            writer.write(
                b"HTTP/1.1 200 OK\r\n"
                b"Content-Type: application/x-ndjson\r\n"
                b"Transfer-Encoding: chunked\r\n"
                b"Connection: close\r\n\r\n"
            )
            await _send_chunk(
                writer,
                {
                    "event": "accepted",
                    "fingerprint": job.fingerprint,
                    "disposition": disposition,
                },
            )
            get_task = asyncio.ensure_future(queue.get())
            while True:
                await asyncio.wait(
                    {get_task, eof_task},
                    return_when=asyncio.FIRST_COMPLETED,
                )
                if get_task.done():
                    line = get_task.result()
                    await _send_chunk(writer, line)
                    if line.get("event") == "result":
                        break
                    get_task = asyncio.ensure_future(queue.get())
                    if not eof_task.done():
                        continue
                if eof_task.done():
                    try:
                        stray = eof_task.result()
                    except (ConnectionError, OSError):
                        stray = b""
                    if not stray:
                        return  # client disconnected mid-stream
                    eof_task = asyncio.ensure_future(reader.read(1))
            writer.write(b"0\r\n\r\n")
            await writer.drain()
        finally:
            for task in (eof_task, get_task):
                if task is not None and not task.done():
                    task.cancel()
                    with contextlib.suppress(
                        asyncio.CancelledError, Exception
                    ):
                        await task
            _M_ACTIVE.inc(-1)
            job.unsubscribe(queue)


async def _send_chunk(writer, payload: dict) -> None:
    data = (json.dumps(payload, sort_keys=True) + "\n").encode()
    writer.write(f"{len(data):x}\r\n".encode() + data + b"\r\n")
    await writer.drain()


async def _respond(
    writer, status: int, payload: dict, retry_after: Optional[float] = None
) -> None:
    await _respond_text(
        writer,
        status,
        json.dumps(payload, sort_keys=True) + "\n",
        content_type="application/json",
        retry_after=retry_after,
    )


_REASONS = {
    200: "OK",
    400: "Bad Request",
    404: "Not Found",
    408: "Request Timeout",
    429: "Too Many Requests",
    503: "Service Unavailable",
}


async def _respond_text(
    writer,
    status: int,
    text: str,
    content_type: str,
    retry_after: Optional[float] = None,
) -> None:
    body = text.encode()
    reason = _REASONS.get(status, "OK")
    extra = ""
    if retry_after is not None:
        extra = f"Retry-After: {max(int(retry_after), 1)}\r\n"
    writer.write(
        f"HTTP/1.1 {status} {reason}\r\n"
        f"Content-Type: {content_type}\r\n"
        f"Content-Length: {len(body)}\r\n"
        f"{extra}"
        f"Connection: close\r\n\r\n".encode() + body
    )
    await writer.drain()


async def _serve_forever(server: CampaignServer) -> None:
    loop = asyncio.get_running_loop()
    stop = asyncio.Event()
    installed = []
    for sig in (signallib.SIGTERM, signallib.SIGINT):
        try:
            loop.add_signal_handler(sig, stop.set)
            installed.append(sig)
        except (NotImplementedError, RuntimeError):  # pragma: no cover
            pass  # platform without loop signal handlers
    await server.start()
    print(
        f"repro serve: listening on http://{server.host}:{server.port} "
        f"(POST /campaign, GET /metrics, GET /healthz, GET /readyz)",
        flush=True,
    )
    if server.recovered:
        print(
            f"repro serve: recovered {server.recovered} journaled "
            f"request(s); replaying from checkpoints",
            flush=True,
        )
    try:
        await stop.wait()
        print(
            f"repro serve: draining ({server._outstanding()} in flight, "
            f"timeout {server.drain_timeout:g}s)",
            flush=True,
        )
        await server.drain()
        print("repro serve: drained, bye", flush=True)
    finally:
        for sig in installed:
            loop.remove_signal_handler(sig)
        await server.close()


def serve(
    host: str = "127.0.0.1",
    port: int = 8341,
    processes: Optional[int] = None,
    transport: str = "auto",
    workers: int = 2,
    queue_limit: int = 8,
    deadline_s: Optional[float] = None,
    drain_timeout: float = 10.0,
    state_dir: Optional[str] = None,
    recover: bool = False,
    max_jobs: int = 64,
    read_timeout: float = 10.0,
) -> int:
    """Blocking entry point behind ``python -m repro serve``."""
    if os.environ.get("REPRO_CHAOS_SERVE"):
        # Test seam: the serve-chaos suite arms deliberate slowness in
        # the spawned server process through the environment.
        from .qa.chaos import install_serve_env_sabotage

        install_serve_env_sabotage()
    # Fail fast (and before asyncio swallows it) if the port is taken.
    if port:
        probe = socketlib.socket()
        try:
            probe.setsockopt(socketlib.SOL_SOCKET, socketlib.SO_REUSEADDR, 1)
            probe.bind((host, port))
        except OSError as error:
            print(f"repro serve: cannot bind {host}:{port}: {error}")
            return 2
        finally:
            probe.close()
    if recover and state_dir is None:
        print("repro serve: --recover requires --state-dir DIR")
        return 2
    server = CampaignServer(
        host=host,
        port=port,
        processes=processes,
        transport=transport,
        workers=workers,
        queue_limit=queue_limit,
        deadline_s=deadline_s,
        drain_timeout=drain_timeout,
        state_dir=state_dir,
        recover=recover,
        max_jobs=max_jobs,
        read_timeout=read_timeout,
    )
    try:
        asyncio.run(_serve_forever(server))
    except KeyboardInterrupt:
        pass
    return 0
