"""The code-conversion SCAL sequential machine (Figure 4.5, Theorem 4.4).

The thesis's memory-efficient alternative to dual flip-flops: keep the
self-dual combinational block, but translate its alternating feedback
``(Y, Ȳ)`` to an (n+1)-bit parity word (ALPT), store that, and translate
back to alternating form (PALT) for the next step.  An n-bit machine then
needs n+1 storage bits instead of 2n.

Checkers monitor (1) alternation of the external Z outputs and of the
fed-back Y outputs, and (2) the PALT's 1-out-of-2 code — the combination
Theorem 4.4 proves sufficient for the feedback to be self-checking.

Single-fault injection reaches every part of the loop: the combinational
network (stem/pin stuck-ats), ALPT lines, memory (cells, data lines,
address lines), and PALT lines.
"""

from __future__ import annotations

import dataclasses
from typing import List, Optional, Sequence, Tuple, Union

from ..logic.faults import Fault, MultipleFault
from ..logic.network import Network
from ..seq.encoding import StateEncoding
from ..seq.machine import StateTable
from ..system.memory import MemoryFault, ParityMemory, parity
from .alternating import PERIOD_CLOCK, AlternatingRun, AlternatingStep
from .dualff import self_dual_machine_network
from .translators import ALPT, PALT, TranslatorFault

FaultLike = Union[Fault, MultipleFault]


@dataclasses.dataclass
class CodeConversionMachine:
    """The complete Figure 4.5 system for one sequential machine."""

    machine: StateTable
    network: Network
    encoding: StateEncoding
    alpt: ALPT
    palt: PALT
    memory: ParityMemory
    state_address: int = 0
    clock_name: str = PERIOD_CLOCK

    @property
    def input_names(self) -> Tuple[str, ...]:
        return tuple(f"x{i}" for i in range(self.machine.n_inputs))

    @property
    def output_names(self) -> Tuple[str, ...]:
        return tuple(f"Z{i}" for i in range(self.machine.n_outputs))

    @property
    def state_output_names(self) -> Tuple[str, ...]:
        return tuple(f"Y{i}" for i in range(self.encoding.width))

    def flip_flop_count(self) -> int:
        """Storage cost: the thesis counts the n+1 feedback storage bits
        (the ALPT's latches double as the single level of memory when the
        feedback is through one level, Section 4.3)."""
        return self.encoding.width + 1

    def gate_count(self) -> int:
        """Combinational gates plus the translator gates (n+2 XOR-class
        gates: n PALT XORs, the ALPT parity tree, the PALT parity tree —
        matching the Table 4.1 translator term ``+ n + 2``)."""
        return self.network.gate_count(include_buffers=False) + (
            self.encoding.width + 2
        )

    def reset(self) -> None:
        self.memory.clear()
        code = self.encoding.code(self.machine.initial_state)
        addr_par = self._address_parity()
        self.alpt.data_latches = list(code)
        self.alpt.parity_latch = parity(code) ^ addr_par
        self.memory.store(
            self.state_address, list(code), parity(code) ^ addr_par
        )

    def _address_parity(self) -> int:
        return parity(
            [
                (self.state_address >> i) & 1
                for i in range(self.memory.address_bits)
            ]
        )

    def run(
        self,
        vectors: Sequence[Tuple[int, ...]],
        comb_fault: Optional[FaultLike] = None,
        alpt_fault: Optional[TranslatorFault] = None,
        palt_fault: Optional[TranslatorFault] = None,
        memory_fault: Optional[MemoryFault] = None,
    ) -> AlternatingRun:
        """Drive logical input vectors through the full loop.

        Returns one step per vector monitoring (Z..., Y...) alternation;
        ``checker_flags[t]`` is True when the PALT's 1-out-of-2 code was
        a noncode word at step *t*.
        """
        from ..engine import engine_for

        if alpt_fault is not None and alpt_fault.site == "g":
            # Common-clock failure (Theorem 4.1 case 5): all clock fanout
            # is from one node, so the whole system stops.  Shutdown is
            # regarded as a noncode state — reported as a detection.
            return AlternatingRun((), (True,))
        self.reset()
        self.alpt.inject(alpt_fault)
        self.palt.inject(palt_fault)
        self.memory.inject(memory_fault)
        monitored = list(self.output_names) + list(self.state_output_names)
        # Engine fast path: monitoring and feedback only read output
        # lines, so each period is one cone-pruned output query on a
        # directly-built input point.
        engine = engine_for(self.network)
        pos = {name: i for i, name in enumerate(self.network.inputs)}
        x_pos = [pos[name] for name in self.input_names]
        y_pos = [pos[f"y{i}"] for i in range(self.encoding.width)]
        clock_pos = pos[self.clock_name]
        out_pos = {name: i for i, name in enumerate(self.network.outputs)}
        mon_idx = [out_pos[m] for m in monitored]
        y_idx = [out_pos[name] for name in self.state_output_names]
        addr_par = self._address_parity()
        steps: List[AlternatingStep] = []
        flags: List[bool] = []
        for vector in vectors:
            data, stored_parity = self.memory.load(self.state_address)
            code = self.palt.code_output(data, stored_parity, addr_par)
            code_bad = not PALT.code_valid(code)
            period_values = []
            y_pair = []
            for phase in (0, 1):
                present = self.palt.outputs_for_period(data, phase)
                point = [0] * len(pos)
                for p, bit in zip(x_pos, vector):
                    point[p] = (bit if phase == 0 else 1 - bit) & 1
                point[clock_pos] = phase
                for p, value in zip(y_pos, present):
                    point[p] = value & 1
                outputs = engine.pointwise.output_values(
                    tuple(point), comb_fault
                )
                period_values.append(tuple(outputs[i] for i in mon_idx))
                y_pair.append([outputs[i] for i in y_idx])
            word, new_parity = self.alpt.feed_pair(
                y_pair[0], y_pair[1], address_parity=addr_par
            )
            self.memory.store(self.state_address, word, new_parity)
            steps.append(AlternatingStep(period_values[0], period_values[1]))
            flags.append(code_bad)
        self.alpt.inject(None)
        self.palt.inject(None)
        self.memory.inject(None)
        return AlternatingRun(tuple(steps), tuple(flags))

    def decoded_outputs(self, run: AlternatingRun) -> List[Tuple[int, ...]]:
        n_z = len(self.output_names)
        return [step.first[:n_z] for step in run.steps]


def to_code_conversion(
    machine: StateTable,
    encoding: Optional[StateEncoding] = None,
    style: str = "and-or",
    share_products: bool = True,
    address_bits: int = 4,
) -> CodeConversionMachine:
    """Build the Figure 4.5 system for ``machine``."""
    network, enc = self_dual_machine_network(
        machine, encoding, style=style, share_products=share_products
    )
    width = enc.width
    return CodeConversionMachine(
        machine=machine,
        network=network,
        encoding=enc,
        alpt=ALPT(width),
        palt=PALT(width),
        memory=ParityMemory(width, address_bits, fold_address_parity=False),
        state_address=0,
    )
