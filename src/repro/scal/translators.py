"""The code translators of the code-conversion technique (Section 4.3).

* **ALPT** (Alternating Logic to Parity Translator, Figure 4.4a): takes
  the alternating pair ``(Y, Ȳ)`` produced by the self-dual block over
  two periods and emits an (n+1)-bit parity code word for storage —
  the data bits latched from the first (true) period on the 0→1 clock
  transition, the parity bit latched from the second (complemented)
  period on the 1→0 transition.  With an even word size the parity of
  ``Ȳ`` equals the parity of ``Y``; for odd sizes the period clock is
  folded in, the thesis's "convert an odd word size to even word size or
  change the parity" remark.
* **PALT** (Parity to Alternating Logic Translator, Figure 4.4b): takes
  a stored code word and regenerates the alternating pair by XOR-ing
  every line with the period clock, and produces a 1-out-of-2 code from
  the stored parity bit and the complemented parity recomputed from its
  own data outputs — the self-checking hook Theorem 4.3 relies on.

Both are register-transfer-level models with *named internal fault
sites* matching the line classes the proofs of Theorems 4.1 and 4.3 walk
through (letters a–j as printed in Figures 4.4a/4.4b), so the theorems
can be checked by exhaustive injection.
"""

from __future__ import annotations

import dataclasses
from typing import List, Optional, Sequence, Tuple

from ..system.memory import parity


@dataclasses.dataclass(frozen=True)
class TranslatorFault:
    """A stuck line inside a translator.

    ``site`` names the line class from the thesis's figures; ``index``
    selects the bit position for per-bit sites (ignored otherwise).

    ALPT sites: ``a`` input line, ``b`` latch data-in, ``c`` latch
    output, ``d`` latch clock, ``e`` parity-tree input, ``f`` parity
    latch data-in, ``i`` parity latch output, ``h``/``j`` parity latch
    clock, ``g`` common clock stem.

    PALT sites: ``a`` stored-data input line, ``b`` XOR output (the
    alternating data output), ``c``/``d`` period-clock branch into one
    XOR, ``e`` parity-complement tree, ``f`` computed-parity output,
    ``g``/``h`` the two 1-out-of-2 code output lines.
    """

    site: str
    index: int
    value: int

    def describe(self) -> str:
        return f"{self.site}[{self.index}] s/{self.value}"


class ALPT:
    """Alternating Logic to Parity Translator (Figure 4.4a)."""

    def __init__(self, width: int) -> None:
        self.width = width
        self.data_latches: List[int] = [0] * width
        self.parity_latch: int = 0
        self.fault: Optional[TranslatorFault] = None

    def inject(self, fault: Optional[TranslatorFault]) -> None:
        self.fault = fault

    def _stuck(self, site: str, index: int, value: int) -> int:
        f = self.fault
        if f is not None and f.site == site and f.index == index:
            return f.value
        return value

    def feed_pair(
        self,
        true_values: Sequence[int],
        comp_values: Sequence[int],
        address_parity: int = 0,
    ) -> Tuple[List[int], int]:
        """Consume one alternating pair; return the (data, parity) word.

        ``address_parity`` is folded into the parity bit when the word is
        headed for random-access memory (Dussault's scheme).
        """
        if len(true_values) != self.width or len(comp_values) != self.width:
            raise ValueError("value width mismatch")
        f = self.fault
        clock_dead = f is not None and f.site == "g"
        # First period ends: 0->1 transition latches the true data values.
        for k in range(self.width):
            a = self._stuck("a", k, int(true_values[k]) & 1)
            b = self._stuck("b", k, a)
            if clock_dead or (f is not None and f.site == "d" and f.index == k):
                pass  # latch clock stuck: retain the previous value
            else:
                self.data_latches[k] = b
        # Second period ends: 1->0 transition latches the parity of the
        # complemented values (for even width this equals the data
        # parity; odd widths fold the period clock, i.e. a constant 1).
        tree_inputs = []
        for k in range(self.width):
            a = self._stuck("a", k, int(comp_values[k]) & 1)
            tree_inputs.append(self._stuck("e", k, a))
        par = parity(tree_inputs) ^ (self.width & 1) ^ (int(address_parity) & 1)
        par = self._stuck("f", 0, par)
        if clock_dead or (f is not None and f.site in ("h", "j")):
            pass  # parity latch clock stuck: retain previous parity
        else:
            self.parity_latch = par
        data_out = [
            self._stuck("c", k, self.data_latches[k]) for k in range(self.width)
        ]
        parity_out = self._stuck("i", 0, self.parity_latch)
        return data_out, parity_out


class PALT:
    """Parity to Alternating Logic Translator (Figure 4.4b)."""

    def __init__(self, width: int) -> None:
        self.width = width
        self.fault: Optional[TranslatorFault] = None

    def inject(self, fault: Optional[TranslatorFault]) -> None:
        self.fault = fault

    def _stuck(self, site: str, index: int, value: int) -> int:
        f = self.fault
        if f is not None and f.site == site and f.index == index:
            return f.value
        return value

    def outputs_for_period(
        self, stored_data: Sequence[int], phase: int
    ) -> List[int]:
        """The alternating data outputs ``y_k = t_k ⊕ φ`` for one period."""
        if len(stored_data) != self.width:
            raise ValueError("stored word width mismatch")
        outs = []
        for k in range(self.width):
            a = self._stuck("a", k, int(stored_data[k]) & 1)
            clock = self._stuck("c", k, int(phase) & 1)
            clock = self._stuck("d", k, clock)
            outs.append(self._stuck("b", k, a ^ clock))
        return outs

    def code_output(
        self,
        stored_data: Sequence[int],
        stored_parity: int,
        address_parity: int = 0,
    ) -> Tuple[int, int]:
        """The 1-out-of-2 code pair (stored parity, complement of the
        recomputed parity of the first-period data outputs).

        Valid operation gives complementary values; equal values are a
        noncode word — the checker input Theorem 4.3 requires.
        """
        first_period = self.outputs_for_period(stored_data, 0)
        tree = [self._stuck("e", k, v) for k, v in enumerate(first_period)]
        computed = parity(tree) ^ (int(address_parity) & 1)
        complement = self._stuck("f", 0, 1 - computed)
        g_line = self._stuck("g", 0, int(stored_parity) & 1)
        h_line = self._stuck("h", 0, complement)
        return g_line, h_line

    @staticmethod
    def code_valid(code: Tuple[int, int]) -> bool:
        """1-out-of-2 validity: exactly one of the two rails is 1."""
        return code[0] != code[1]
