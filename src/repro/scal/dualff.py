"""Reynolds' dual flip-flop SCAL sequential machines (Section 4.2).

Two steps convert a sequential machine to alternating logic:

1. make the combinational block self-dual — "at most, this requires the
   addition of one extra variable, specifically the clock line"; we
   tabulate every output/next-state function over (inputs, state bits),
   self-dualize with the period clock φ (Yamamoto construction), and
   re-synthesize two-level so the block is self-checking by the
   Section 3.3 two-level result;
2. double the number of delays in the feedback path (Figure 4.2a), so in
   period 2k the block sees ``(X_k, y_{k-1})`` and in period 2k+1 the
   complements ``(X̄_k, ȳ_{k-1})``.

Both the Z outputs *and* the fed-back Y outputs are monitored for
alternation ("it is necessary to monitor not only the Z outputs, but also
the Y outputs"), which is what :meth:`DualFlipFlopMachine.run` reports.
"""

from __future__ import annotations

import dataclasses
from typing import Dict, List, Optional, Sequence, Tuple, Union

from ..logic.faults import Fault, MultipleFault
from ..logic.network import Network
from ..logic.selfdual import self_dualize_table
from ..logic.truthtable import TruthTable
from ..seq.encoding import StateEncoding, binary_encoding
from ..seq.machine import StateTable
from ..seq.simulator import FlipFlopFault, SequentialCircuit
from ..seq.synthesis import machine_tables
from .alternating import PERIOD_CLOCK, AlternatingRun, AlternatingStep

FaultLike = Union[Fault, MultipleFault]


def self_dual_machine_network(
    machine: StateTable,
    encoding: Optional[StateEncoding] = None,
    style: str = "and-or",
    share_products: bool = True,
    clock_name: str = PERIOD_CLOCK,
) -> Tuple[Network, StateEncoding]:
    """The self-dualized combinational block of a machine.

    Inputs: ``x0..`` machine inputs, ``y0..`` present-state bits, and the
    period clock.  Outputs: ``Z*`` then ``Y*``.  Don't-cares from unused
    state codes are *not* exploited here: the self-dualized function must
    be fully specified in both periods, so unused codes are completed
    with 0 before dualization (their behaviour is never exercised by a
    healthy machine, and under faults any value is as good as any other).
    """
    from ..logic.synthesis import multi_output_sop

    enc = encoding if encoding is not None else binary_encoding(machine.states)
    tables, _dont_care, names = machine_tables(machine, enc)
    sd_tables: Dict[str, TruthTable] = {}
    for out_name, table in tables.items():
        sd_tables[out_name] = self_dualize_table(table, clock_name)
    sd_names = tuple(names) + (clock_name,)
    network = multi_output_sop(
        sd_tables,
        sd_names,
        style=style,
        network_name=f"{machine.name}_sd_comb",
        share_products=share_products,
    )
    return network, enc


@dataclasses.dataclass
class DualFlipFlopMachine:
    """A machine in Reynolds' dual flip-flop SCAL form (Figure 4.2a)."""

    machine: StateTable
    circuit: SequentialCircuit
    encoding: StateEncoding
    clock_name: str = PERIOD_CLOCK

    @property
    def input_names(self) -> Tuple[str, ...]:
        return tuple(f"x{i}" for i in range(self.machine.n_inputs))

    @property
    def output_names(self) -> Tuple[str, ...]:
        return tuple(f"Z{i}" for i in range(self.machine.n_outputs))

    @property
    def state_output_names(self) -> Tuple[str, ...]:
        return tuple(f"Y{i}" for i in range(self.encoding.width))

    def flip_flop_count(self) -> int:
        return self.circuit.flip_flop_count()

    def gate_count(self) -> int:
        return self.circuit.gate_count()

    def run(
        self,
        vectors: Sequence[Tuple[int, ...]],
        fault: Optional[FaultLike] = None,
        ff_fault: Optional[FlipFlopFault] = None,
        fault_window: Optional[Tuple[int, int]] = None,
    ) -> AlternatingRun:
        """Drive logical input vectors in alternating mode.

        Each vector occupies two clock periods; the run reports, per
        step, the (Z..., Y...) pair values and the alternation verdict —
        monitoring Z *and* Y as the thesis requires.

        ``fault_window=(first, last)`` makes the fault *transient*
        (Definition 2.1 covers both): it is active only during clock
        periods ``first..last`` inclusive (period = 2·step + phase).
        ``None`` means permanent.
        """
        self.circuit.reset()
        self._set_alternating_initial_state()
        monitored = list(self.output_names) + list(self.state_output_names)
        out_pos = {
            name: i for i, name in enumerate(self.circuit.network.outputs)
        }
        mon_idx = [out_pos[m] for m in monitored]
        steps: List[AlternatingStep] = []
        period = 0
        for vector in vectors:
            period_values = []
            for phase in (0, 1):
                active = fault_window is None or (
                    fault_window[0] <= period <= fault_window[1]
                )
                assignment = {
                    name: (bit if phase == 0 else 1 - bit)
                    for name, bit in zip(self.input_names, vector)
                }
                assignment[self.clock_name] = phase
                outputs = self.circuit.step_outputs(
                    assignment,
                    fault=fault if active else None,
                    ff_fault=ff_fault if active else None,
                )
                period_values.append(tuple(outputs[i] for i in mon_idx))
                period += 1
            steps.append(AlternatingStep(period_values[0], period_values[1]))
        return AlternatingRun(tuple(steps))

    def decoded_outputs(self, run: AlternatingRun) -> List[Tuple[int, ...]]:
        """Logical Z values (first-period, Z positions only)."""
        n_z = len(self.output_names)
        return [step.first[:n_z] for step in run.steps]

    def _set_alternating_initial_state(self) -> None:
        """Seed the two-stage chains with (ȳ_init, y_init): the block
        must see the true code in period 0 and its complement in period 1."""
        code = self.encoding.code(self.machine.initial_state)
        for i, bit in enumerate(code):
            chain = self.circuit.chains[f"y{i}"]
            chain.stages[-1].q = bit
            chain.stages[0].q = 1 - bit


def to_dual_flipflop(
    machine: StateTable,
    encoding: Optional[StateEncoding] = None,
    style: str = "and-or",
    share_products: bool = True,
) -> DualFlipFlopMachine:
    """Build the Figure 4.2a machine for ``machine``."""
    network, enc = self_dual_machine_network(
        machine, encoding, style=style, share_products=share_products
    )
    feedback = {f"Y{i}": f"y{i}" for i in range(enc.width)}
    code = enc.code(machine.initial_state)
    initial = {f"y{i}": bit for i, bit in enumerate(code)}
    circuit = SequentialCircuit(
        network,
        feedback,
        depth=2,
        initial_state=initial,
        name=f"{machine.name}_dualff",
    )
    return DualFlipFlopMachine(machine, circuit, enc)
