"""Inductive (exhaustive) verification of dual flip-flop SCAL machines.

Random-stream campaigns (:mod:`repro.scal.verify`) sample behaviour;
this module proves the sequential fault-security property *inductively*:

    If, from every reachable state and for every input vector, a single
    step under the fault either (a) produces the correct alternating
    (Z, Y) pairs or (b) produces a nonalternating pair on some monitored
    line — then the machine never silently diverges: the first step at
    which anything goes wrong is detected, because the Y lines are
    monitored along with Z (the Section 4.2 requirement "to monitor not
    only the Z outputs, but also the Y outputs").

The verifier enumerates (state, input) exhaustively per fault, seeding
the two-stage feedback chains with the alternating pair (ȳ, y) for each
state code — the steady-state contents of a healthy Figure 4.2a machine.
For the small machines of the thesis this is a complete proof over the
single-fault universe, not a test.
"""

from __future__ import annotations

import dataclasses
from typing import List, Optional, Sequence, Tuple

from ..logic.faults import Fault, enumerate_stem_faults
from ..seq.machine import StateTable
from .dualff import DualFlipFlopMachine


@dataclasses.dataclass(frozen=True)
class StepOutcome:
    """Classification of one (fault, state, input) step."""

    state: str
    vector: Tuple[int, ...]
    correct: bool
    detected: bool

    @property
    def silent_wrong(self) -> bool:
        return not self.correct and not self.detected


@dataclasses.dataclass(frozen=True)
class InductiveVerdict:
    """Exhaustive verdict for one machine over a fault universe."""

    machine_name: str
    faults: int
    steps_checked: int
    violations: Tuple[Tuple[str, str, Tuple[int, ...]], ...]  # (fault, state, input)

    @property
    def holds(self) -> bool:
        return not self.violations

    def summary(self) -> str:
        status = "PROVED" if self.holds else "VIOLATED"
        text = (
            f"{self.machine_name}: inductive fault security {status} "
            f"({self.faults} faults x {self.steps_checked // max(self.faults, 1)} "
            f"(state, input) steps)"
        )
        for fault, state, vector in self.violations[:5]:
            text += f"\n  silent wrong step: {fault} from {state} on {vector}"
        return text


def _seed_state(machine: DualFlipFlopMachine, state: str) -> None:
    code = machine.encoding.code(state)
    machine.circuit.reset()
    for i, bit in enumerate(code):
        chain = machine.circuit.chains[f"y{i}"]
        chain.stages[-1].q = bit
        chain.stages[0].q = 1 - bit


def _single_step(
    machine: DualFlipFlopMachine,
    state: str,
    vector: Tuple[int, ...],
    fault: Optional[Fault],
) -> Tuple[Tuple[int, ...], Tuple[int, ...]]:
    """One logical step from ``state``; returns the (Z…Y…) period pair."""
    _seed_state(machine, state)
    monitored = list(machine.output_names) + list(machine.state_output_names)
    out_pos = {
        name: i for i, name in enumerate(machine.circuit.network.outputs)
    }
    mon_idx = [out_pos[m] for m in monitored]
    pair = []
    for phase in (0, 1):
        assignment = {
            name: (bit if phase == 0 else 1 - bit)
            for name, bit in zip(machine.input_names, vector)
        }
        assignment[machine.clock_name] = phase
        outputs = machine.circuit.step_outputs(assignment, fault=fault)
        pair.append(tuple(outputs[i] for i in mon_idx))
    return pair[0], pair[1]


def verify_inductively(
    machine: DualFlipFlopMachine,
    faults: Optional[Sequence[Fault]] = None,
    include_inputs: bool = False,
) -> InductiveVerdict:
    """Prove (or refute) single-step fault security over all reachable
    states and inputs, for every fault in the universe."""
    table: StateTable = machine.machine
    universe = (
        list(faults)
        if faults is not None
        else list(
            enumerate_stem_faults(
                machine.circuit.network, include_inputs=include_inputs
            )
        )
    )
    states = table.reachable_states()
    vectors = table.input_vectors()
    violations: List[Tuple[str, str, Tuple[int, ...]]] = []
    steps = 0
    for fault in universe:
        for state in states:
            for vector in vectors:
                steps += 1
                expected_first, expected_second = _expected_pair(
                    machine, state, vector
                )
                first, second = _single_step(machine, state, vector, fault)
                correct = first == expected_first and second == expected_second
                alternates = all(
                    b == 1 - a for a, b in zip(first, second)
                )
                if not correct and alternates:
                    violations.append((fault.describe(), state, vector))
    return InductiveVerdict(
        machine_name=machine.circuit.name,
        faults=len(universe),
        steps_checked=steps,
        violations=tuple(violations),
    )


def _expected_pair(
    machine: DualFlipFlopMachine,
    state: str,
    vector: Tuple[int, ...],
) -> Tuple[Tuple[int, ...], Tuple[int, ...]]:
    """The healthy (Z…Y…) alternating pair for one step."""
    table = machine.machine
    next_state, output = table.step(state, vector)
    next_code = machine.encoding.code(next_state)
    first = tuple(output) + tuple(next_code)
    second = tuple(1 - v for v in first)
    return first, second
