"""Hardware cost model and the Table 4.1 comparison (Section 4.5).

The thesis compares three realizations of a sequential machine:

======================  ==========  =====================
approach                flip-flops  gates
======================  ==========  =====================
Kohavi (unchecked)      n           m
Reynolds dual flip-flop 2n          1.8·m
Code translator         n+1         1.8·m + n + 2
======================  ==========  =====================

with n, m the unchecked machine's flip-flop and gate counts and 1.8 the
approximate SCAL conversion cost factor Reynolds measured.  The concrete
thesis example (the 0101 sequence detector) lands at (2, 12), (4, 19)
and (3, 23).  This module provides both the general formulas and a
measured-cost extractor so the bench can print paper-vs-measured rows.
"""

from __future__ import annotations

import dataclasses
from typing import Dict, Optional, Sequence, Tuple

from ..logic.gates import GateKind
from ..logic.network import Network

#: Reynolds' approximate cost factor for converting normal logic to SCAL.
REYNOLDS_COST_FACTOR = 1.8

#: Per-gate unit weights for the area side of the synthesis Pareto
#: front.  Table 4.1 counts whole gates (buffers free, as in
#: ``gate_count(include_buffers=False)``); the synthesis loop needs a
#: finer tiebreaker, so each gate is charged one unit plus a tenth per
#: input beyond the first — two networks with equal gate counts then
#: rank by total fan-in, matching the thesis's secondary gate-input
#: tallies.  Constants and buffers are wiring, not area.
GATE_UNIT_COSTS: Dict[GateKind, float] = {
    GateKind.INPUT: 0.0,
    GateKind.CONST0: 0.0,
    GateKind.CONST1: 0.0,
    GateKind.BUF: 0.0,
    GateKind.NOT: 1.0,
    GateKind.AND: 1.0,
    GateKind.OR: 1.0,
    GateKind.NAND: 1.0,
    GateKind.NOR: 1.0,
    GateKind.XOR: 1.0,
    GateKind.XNOR: 1.0,
    GateKind.MAJ: 1.0,
    GateKind.MIN: 1.0,
}

#: Fan-in surcharge per input beyond the first on a costed gate.
GATE_INPUT_COST = 0.1


def network_cost(network: Network) -> float:
    """Area of a network under the Table 4.1-compatible unit model.

    ``sum(GATE_UNIT_COSTS[kind])`` reproduces
    ``gate_count(include_buffers=False)`` exactly (every costed gate
    weighs 1.0); the ``GATE_INPUT_COST`` surcharge adds the gate-input
    tiebreaker the Pareto front sorts on.
    """
    total = 0.0
    for gate in network.gates:
        unit = GATE_UNIT_COSTS[gate.kind]
        if unit:
            total += unit + GATE_INPUT_COST * max(len(gate.inputs) - 1, 0)
    return round(total, 6)


@dataclasses.dataclass(frozen=True)
class CostReport:
    """Hardware cost of one realization."""

    approach: str
    flip_flops: int
    gates: float
    gate_inputs: Optional[int] = None

    def row(self) -> Tuple[str, str, str]:
        gates = f"{self.gates:g}"
        return self.approach, str(self.flip_flops), gates


def kohavi_general(n: int, m: int) -> CostReport:
    """The unchecked machine itself."""
    return CostReport("Kohavi general", n, m)


def reynolds_general(n: int, m: int) -> CostReport:
    """Dual flip-flop SCAL (Table 4.1 row 'Reynolds general')."""
    return CostReport("Reynolds general", 2 * n, REYNOLDS_COST_FACTOR * m)


def translator_general(n: int, m: int) -> CostReport:
    """Code-conversion SCAL (Table 4.1 row 'Translator general')."""
    return CostReport(
        "Translator general", n + 1, REYNOLDS_COST_FACTOR * m + n + 2
    )


#: The thesis's measured Table 4.1 for the 0101 sequence detector.
THESIS_TABLE_4_1: Tuple[CostReport, ...] = (
    CostReport("Kohavi example", 2, 12),
    CostReport("Reynolds example", 4, 19),
    CostReport("Translator example", 3, 23),
)


def measured_cost(
    approach: str,
    flip_flops: int,
    network: Network,
    extra_gates: int = 0,
) -> CostReport:
    """Extract a cost row from a synthesized realization."""
    return CostReport(
        approach,
        flip_flops,
        network.gate_count(include_buffers=False) + extra_gates,
        gate_inputs=network.gate_input_count(),
    )


def render_cost_table(rows: Sequence[CostReport], title: str = "") -> str:
    lines = []
    if title:
        lines.append(title)
    header = ("approach", "flip-flops", "gates")
    widths = [
        max(len(header[0]), max(len(r.approach) for r in rows)),
        len(header[1]),
        max(len(header[2]), max(len(f"{r.gates:g}") for r in rows)),
    ]
    lines.append(
        "  ".join(h.ljust(w) for h, w in zip(header, widths))
    )
    lines.append("  ".join("-" * w for w in widths))
    for r in rows:
        cells = r.row()
        lines.append("  ".join(c.ljust(w) for c, w in zip(cells, widths)))
    return "\n".join(lines)


def cost_factor(normal_gates: int, scal_gates: int) -> float:
    """The measured SCAL conversion factor ``A`` (Section 7.4 uses it to
    price ADR against TMR; Reynolds' average was 1.8)."""
    if normal_gates <= 0:
        raise ValueError("normal gate count must be positive")
    return scal_gates / normal_gates
