"""SCAL sequential design techniques (Chapter 4): alternating operation,
the dual flip-flop transform, the ALPT/PALT translators, the complete
code-conversion system, and the Table 4.1 cost model."""

from .alternating import (
    PERIOD_CLOCK,
    AlternatingRun,
    AlternatingStep,
    alternating_pair,
    alternating_stream,
    pair_periods,
)
from .codeconv import CodeConversionMachine, to_code_conversion
from .costs import (
    REYNOLDS_COST_FACTOR,
    THESIS_TABLE_4_1,
    CostReport,
    cost_factor,
    kohavi_general,
    measured_cost,
    render_cost_table,
    reynolds_general,
    translator_general,
)
from .dualff import (
    DualFlipFlopMachine,
    self_dual_machine_network,
    to_dual_flipflop,
)
from .induction import InductiveVerdict, verify_inductively
from .translators import ALPT, PALT, TranslatorFault
from .verify import (
    CampaignResult,
    codeconv_campaign,
    dualff_campaign,
    random_vectors,
)

__all__ = [
    "ALPT",
    "AlternatingRun",
    "CampaignResult",
    "InductiveVerdict",
    "AlternatingStep",
    "CodeConversionMachine",
    "CostReport",
    "DualFlipFlopMachine",
    "PALT",
    "PERIOD_CLOCK",
    "REYNOLDS_COST_FACTOR",
    "THESIS_TABLE_4_1",
    "TranslatorFault",
    "alternating_pair",
    "alternating_stream",
    "codeconv_campaign",
    "cost_factor",
    "dualff_campaign",
    "kohavi_general",
    "measured_cost",
    "pair_periods",
    "render_cost_table",
    "reynolds_general",
    "self_dual_machine_network",
    "to_code_conversion",
    "to_dual_flipflop",
    "random_vectors",
    "verify_inductively",
    "translator_general",
]
