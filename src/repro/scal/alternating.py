"""Alternating-operation helpers: drive streams, check alternation.

Alternating logic applies each input vector twice — true in the first
period (φ=0), complemented in the second (φ=1) — and a healthy SCAL
network answers with complementary values (Definition 2.5).  These
helpers build such streams, split period traces back into logical steps,
and perform the checker's job in software: flag every output pair that
fails to alternate.
"""

from __future__ import annotations

import dataclasses
from typing import Dict, Iterable, List, Mapping, Optional, Sequence, Tuple

PERIOD_CLOCK = "phi"


def alternating_pair(
    vector: Mapping[str, int], clock_name: str = PERIOD_CLOCK
) -> Tuple[Dict[str, int], Dict[str, int]]:
    """The two period assignments for one logical input vector."""
    first = dict(vector)
    first[clock_name] = 0
    second = {name: 1 - (int(v) & 1) for name, v in vector.items()}
    second[clock_name] = 1
    return first, second


def alternating_stream(
    vectors: Iterable[Mapping[str, int]], clock_name: str = PERIOD_CLOCK
) -> List[Dict[str, int]]:
    """Interleave true/complemented assignments with the period clock."""
    stream: List[Dict[str, int]] = []
    for vector in vectors:
        first, second = alternating_pair(vector, clock_name)
        stream.append(first)
        stream.append(second)
    return stream


@dataclasses.dataclass(frozen=True)
class AlternatingStep:
    """One logical step: the two period output tuples plus the verdict."""

    first: Tuple[int, ...]
    second: Tuple[int, ...]

    @property
    def alternates(self) -> bool:
        return all(b == 1 - a for a, b in zip(self.first, self.second))

    @property
    def decoded(self) -> Tuple[int, ...]:
        """The logical (first-period) output values."""
        return self.first

    def nonalternating_positions(self) -> Tuple[int, ...]:
        return tuple(
            i for i, (a, b) in enumerate(zip(self.first, self.second)) if a == b
        )


@dataclasses.dataclass(frozen=True)
class AlternatingRun:
    """A full alternating run: steps plus any extra checker flags."""

    steps: Tuple[AlternatingStep, ...]
    checker_flags: Tuple[bool, ...] = ()  # True = extra checker raised

    @property
    def detected(self) -> bool:
        """Any nonalternating step or raised checker flag."""
        if any(not step.alternates for step in self.steps):
            return True
        return any(self.checker_flags)

    @property
    def first_detection(self) -> Optional[int]:
        for i, step in enumerate(self.steps):
            if not step.alternates:
                return i
            if i < len(self.checker_flags) and self.checker_flags[i]:
                return i
        return None

    def decoded_outputs(self) -> List[Tuple[int, ...]]:
        return [step.decoded for step in self.steps]


def pair_periods(trace: Sequence[Tuple[int, ...]]) -> AlternatingRun:
    """Group a per-period output trace into alternating steps."""
    if len(trace) % 2:
        raise ValueError("alternating traces have an even number of periods")
    steps = tuple(
        AlternatingStep(trace[i], trace[i + 1]) for i in range(0, len(trace), 2)
    )
    return AlternatingRun(steps)
