"""Fault campaigns for SCAL sequential machines.

The combinational oracle (:mod:`repro.core.simulate`) is exhaustive over
inputs; sequential machines additionally carry state, so their campaigns
drive a (seeded or supplied) input stream against every fault and
classify the runs.  This is the API behind the Chapter 4 benches and the
tool a user points at their own machine:

    campaign = sequential_campaign(to_dual_flipflop(machine), vectors)
    assert campaign.dangerous == 0
"""

from __future__ import annotations

import dataclasses
import random
from typing import List, Optional, Sequence, Tuple

from ..logic.faults import Fault, enumerate_stem_faults
from ..seq.machine import StateTable
from ..seq.simulator import FlipFlopFault
from .codeconv import CodeConversionMachine
from .dualff import DualFlipFlopMachine


@dataclasses.dataclass(frozen=True)
class CampaignResult:
    """Outcome of a sequential single-fault campaign."""

    machine_name: str
    total: int
    detected: int
    silent: int
    dangerous: int
    dangerous_faults: Tuple[str, ...]
    mean_detection_latency: Optional[float]

    @property
    def is_fault_secure(self) -> bool:
        return self.dangerous == 0

    def summary(self) -> str:
        latency = (
            f"{self.mean_detection_latency:.1f} steps"
            if self.mean_detection_latency is not None
            else "n/a"
        )
        return (
            f"{self.machine_name}: {self.total} faults -> "
            f"detected {self.detected}, silent {self.silent}, "
            f"DANGEROUS {self.dangerous}; mean detection latency {latency}"
        )


def _campaign(
    machine_name: str,
    reference: List[Tuple[int, ...]],
    runs,
) -> CampaignResult:
    total = detected = silent = dangerous = 0
    latencies: List[int] = []
    bad: List[str] = []
    for label, run, decoded in runs:
        total += 1
        wrong = decoded != reference
        if run.detected:
            detected += 1
            if run.first_detection is not None:
                latencies.append(run.first_detection)
        elif wrong:
            dangerous += 1
            bad.append(label)
        else:
            silent += 1
    mean_latency = sum(latencies) / len(latencies) if latencies else None
    return CampaignResult(
        machine_name=machine_name,
        total=total,
        detected=detected,
        silent=silent,
        dangerous=dangerous,
        dangerous_faults=tuple(bad),
        mean_detection_latency=mean_latency,
    )


def _stem_universe(
    network, include_inputs: bool, collapse: bool
) -> List[Fault]:
    """Combinational stem faults for a campaign, collapsed by default.

    Structurally equivalent faults have identical faulty functions at
    every evaluation, so one representative per class preserves the
    campaign verdict while skipping the duplicate clocked runs.  Pass
    ``collapse=False`` for the raw stem universe.
    """
    if collapse:
        from ..core.collapse import collapse_stem_faults

        return list(
            collapse_stem_faults(network, include_inputs=include_inputs)
        )
    return list(
        enumerate_stem_faults(network, include_inputs=include_inputs)
    )


def dualff_campaign(
    machine: DualFlipFlopMachine,
    vectors: Sequence[Tuple[int, ...]],
    include_inputs: bool = False,
    include_flip_flops: bool = True,
    collapse: bool = True,
) -> CampaignResult:
    """Single-fault campaign over a dual flip-flop machine: every
    combinational stem fault (collapsed to equivalence-class
    representatives unless ``collapse=False``) plus (optionally) every
    flip-flop stage output stuck."""
    reference = machine.machine.run(list(vectors))

    def runs():
        for fault in _stem_universe(
            machine.circuit.network, include_inputs, collapse
        ):
            run = machine.run(vectors, fault=fault)
            yield fault.describe(), run, machine.decoded_outputs(run)
        if include_flip_flops:
            for state_line in machine.circuit.chains:
                for stage in range(machine.circuit.depth):
                    for value in (0, 1):
                        ff = FlipFlopFault(state_line, stage, value)
                        run = machine.run(vectors, ff_fault=ff)
                        yield ff.describe(), run, machine.decoded_outputs(run)

    return _campaign(machine.circuit.name, reference, runs())


def codeconv_campaign(
    machine: CodeConversionMachine,
    vectors: Sequence[Tuple[int, ...]],
    include_inputs: bool = False,
    collapse: bool = True,
) -> CampaignResult:
    """Single-fault campaign over a code-conversion machine: every
    combinational stem fault (collapsed unless ``collapse=False``),
    every translator line class, every memory fault."""
    from ..scal.translators import TranslatorFault
    from ..system.memory import single_memory_faults

    reference = machine.machine.run(list(vectors))
    width = machine.encoding.width

    def runs():
        for fault in _stem_universe(
            machine.network, include_inputs, collapse
        ):
            run = machine.run(vectors, comb_fault=fault)
            yield f"comb {fault.describe()}", run, machine.decoded_outputs(run)
        alpt_sites = [(s, k) for s in "abcde" for k in range(width)]
        alpt_sites += [("f", 0), ("i", 0), ("h", 0), ("g", 0)]
        for site, k in alpt_sites:
            for value in (0, 1):
                tf = TranslatorFault(site, k, value)
                run = machine.run(vectors, alpt_fault=tf)
                yield f"alpt {tf.describe()}", run, machine.decoded_outputs(run)
        palt_sites = [(s, k) for s in "abcde" for k in range(width)]
        palt_sites += [("f", 0), ("g", 0), ("h", 0)]
        for site, k in palt_sites:
            for value in (0, 1):
                tf = TranslatorFault(site, k, value)
                run = machine.run(vectors, palt_fault=tf)
                yield f"palt {tf.describe()}", run, machine.decoded_outputs(run)
        for mf in single_memory_faults(width, machine.memory.address_bits):
            run = machine.run(vectors, memory_fault=mf)
            yield f"mem {mf.describe()}", run, machine.decoded_outputs(run)

    return _campaign(f"{machine.machine.name}_codeconv", reference, runs())


def random_vectors(
    machine: StateTable, length: int, seed: int = 0
) -> List[Tuple[int, ...]]:
    """A seeded input stream exercising the machine."""
    rnd = random.Random(seed)
    return [
        tuple(rnd.randint(0, 1) for _ in range(machine.n_inputs))
        for _ in range(length)
    ]
