"""Seed-circuit specifications for synthesis campaigns.

A :class:`SynthSpec` is the target contract a campaign evolves toward:
named inputs (the alternation variable ``phi`` last, where present) and
one truth table per output.  The built-in registry covers small
functions made self-dual by the Yamamoto construction
(:func:`repro.logic.selfdual.self_dualize_table`) plus functions that
are self-dual outright (3-input majority, 3-input parity), so a perfect
candidate is simultaneously functionally correct *and* alternating.

Each spec also carries a two-level reference realization
(:func:`repro.logic.synthesis.sop_network`) — the Yamamoto-style SCAL
network that hosts the campaign's execution transports and anchors the
Table 4.1 cost comparison in the Pareto report.
"""

from __future__ import annotations

import dataclasses
import hashlib
import json
from typing import Dict, Tuple

from ..engine import engine_for
from ..logic.network import Network
from ..logic.selfdual import PERIOD_CLOCK, self_dualize_table
from ..logic.synthesis import sop_network
from ..logic.truthtable import TruthTable


@dataclasses.dataclass(frozen=True)
class SynthSpec:
    """One synthesis target: named inputs and per-output truth tables."""

    name: str
    input_names: Tuple[str, ...]
    tables: Tuple[int, ...]
    description: str = ""

    @property
    def n_inputs(self) -> int:
        return len(self.input_names)

    @property
    def points(self) -> int:
        return 1 << self.n_inputs

    def fingerprint(self) -> str:
        payload = json.dumps(
            {
                "name": self.name,
                "inputs": list(self.input_names),
                "tables": list(self.tables),
            },
            sort_keys=True,
            separators=(",", ":"),
        )
        return hashlib.sha256(payload.encode("ascii")).hexdigest()

    def reference_network(self) -> Network:
        """The two-level reference realization; multi-output specs
        synthesize one SOP cone per output into a shared builder over
        the common inputs."""
        if len(self.tables) == 1:
            return sop_network(
                TruthTable(self.n_inputs, self.tables[0], self.input_names),
                names=self.input_names,
                network_name=f"spec_{self.name}",
            )
        from ..logic.network import NetworkBuilder

        builder = NetworkBuilder(list(self.input_names), name=f"spec_{self.name}")
        outs = []
        for k, bits in enumerate(self.tables):
            cone = sop_network(
                TruthTable(self.n_inputs, bits, self.input_names),
                names=self.input_names,
                output_name=f"F{k}",
                network_name=f"spec_{self.name}_{k}",
            )
            rename = {name: name for name in self.input_names}
            for gate in cone.gates:
                rename[gate.name] = builder.add(
                    f"o{k}_{gate.name}",
                    gate.kind,
                    [rename[src] for src in gate.inputs],
                )
            outs.append(rename[cone.outputs[0]])
        return builder.build(outs)


def _self_dualized(name: str, n: int, bits: int, description: str) -> SynthSpec:
    base = TruthTable(n, bits, tuple(f"x{i}" for i in range(n)))
    table = self_dualize_table(base, PERIOD_CLOCK)
    return SynthSpec(
        name=name,
        input_names=tuple(table.names),
        tables=(table.bits,),
        description=description,
    )


#: Built-in seed-circuit specs, keyed by CLI name.
SPECS: Dict[str, SynthSpec] = {
    "and2": _self_dualized(
        "and2", 2, 0b1000, "2-input AND, Yamamoto self-dualized with phi"
    ),
    "or2": _self_dualized(
        "or2", 2, 0b1110, "2-input OR, Yamamoto self-dualized with phi"
    ),
    "xor2": _self_dualized(
        "xor2",
        2,
        0b0110,
        "2-input XOR self-dualized with phi (3-input odd parity)",
    ),
    "maj3": SynthSpec(
        name="maj3",
        input_names=("x0", "x1", "x2"),
        tables=(0b11101000,),
        description="3-input majority (self-dual without a clock variable)",
    ),
}


def spec_from_network(network: Network) -> SynthSpec:
    """Derive the spec an existing network realizes (repair mode): its
    exhaustive output tables become the contract the repaired candidate
    must match."""
    engine = engine_for(network)
    return SynthSpec(
        name=f"net:{network.name}",
        input_names=tuple(network.inputs),
        tables=tuple(engine.bitmask.output_bits(None)),
        description=f"tables of {network.name!r}",
    )
