"""Mutation/crossover operators over the flat genome representation.

Every operator is a pure function of ``(genome, rng)`` — all randomness
flows through the caller's seeded :class:`random.Random`, so a campaign
is a deterministic function of its seed.  The library follows Garvie &
Husbands' TSC synthesis moves adapted to the SCAL setting:

* **kind substitution** within an arity class (the 2-input library is
  AND/OR/NAND/NOR/XOR/XNOR; 1-input is NOT/BUF; MAJ↔MIN for imported
  odd-arity gates);
* **rewire** of one gate input pin to a random earlier line;
* **add gate** (bounded by ``max_gates``) / **delete gate** with
  consumer re-routing to one of the victim's own sources;
* **dual swap** — replace a gate by its dual (AND↔OR, NAND↔NOR,
  XOR↔XNOR); on a self-dual candidate this explores the
  alternating-logic design space without leaving it;
* **output retarget**;
* **one-point crossover** over gate lists with source clamping (clamped
  indices keep the below-own-line invariant, so children never need a
  cycle repair pass).
"""

from __future__ import annotations

import random
from typing import List, Tuple

from ..logic.gates import GateKind
from .genome import GateGene, Genome

#: Gate library for multi-input substitution and fresh gates.  The
#: ternary majority/minority pair is in deliberately: Chapter 3's
#: minority realizations make self-dual functions *naturally*
#: alternating (the Yamamoto-dualized AND is exactly ``MAJ(x0,x1,phi)``),
#: so the search can reach compact totally-self-checking forms that the
#: two-input library alone plateaus short of.
BINARY_KINDS: Tuple[str, ...] = ("AND", "OR", "NAND", "NOR", "XOR", "XNOR")
UNARY_KINDS: Tuple[str, ...] = ("NOT", "BUF")
TERNARY_KINDS: Tuple[str, ...] = ("MAJ", "MIN")

#: Dual pairs: swapping a gate for its dual preserves membership in the
#: alternating-logic design space (Theorem 3.2's closure under duals).
DUAL_KIND = {
    "AND": "OR",
    "OR": "AND",
    "NAND": "NOR",
    "NOR": "NAND",
    "XOR": "XNOR",
    "XNOR": "XOR",
    "NOT": "NOT",
    "BUF": "BUF",
    "MAJ": "MIN",
    "MIN": "MAJ",
}


def random_genome(
    rng: random.Random,
    n_inputs: int,
    n_gates: int,
    n_outputs: int = 1,
) -> Genome:
    """A random valid genome (inputs-first wiring bias keeps early gates
    reading primary inputs, so small genomes are rarely degenerate)."""
    genes: List[GateGene] = []
    for j in range(n_gates):
        limit = n_inputs + j
        genes.append(_random_gene(rng, limit))
    n_lines = n_inputs + n_gates
    outputs = tuple(
        rng.randrange(n_lines) if n_gates == 0 else n_inputs + rng.randrange(n_gates)
        for _ in range(n_outputs)
    )
    return Genome(n_inputs, tuple(genes), outputs).validate()


def _random_gene(rng: random.Random, limit: int) -> GateGene:
    """A fresh random gate reading lines below ``limit``."""
    roll = rng.random()
    if limit >= 3 and roll < 0.3:
        kind = rng.choice(TERNARY_KINDS)
        srcs = tuple(rng.randrange(limit) for _ in range(3))
    elif limit >= 2 and roll < 0.9:
        kind = rng.choice(BINARY_KINDS)
        srcs = (rng.randrange(limit), rng.randrange(limit))
    else:
        kind = rng.choice(UNARY_KINDS)
        srcs = (rng.randrange(limit),)
    return (kind, srcs)


# ----------------------------------------------------------------------
# point mutations
# ----------------------------------------------------------------------
def _substitute_kind(genome: Genome, rng: random.Random) -> Genome:
    if not genome.gates:
        return genome
    j = rng.randrange(len(genome.gates))
    kind, srcs = genome.gates[j]
    if kind in ("MAJ", "MIN"):
        new_kind = DUAL_KIND[kind]
    elif len(srcs) == 1:
        new_kind = rng.choice([k for k in UNARY_KINDS if k != kind])
    else:
        new_kind = rng.choice([k for k in BINARY_KINDS if k != kind])
    genes = list(genome.gates)
    genes[j] = (new_kind, srcs)
    return Genome(genome.n_inputs, tuple(genes), genome.outputs)


def _rewire(genome: Genome, rng: random.Random) -> Genome:
    if not genome.gates:
        return genome
    j = rng.randrange(len(genome.gates))
    kind, srcs = genome.gates[j]
    slot = rng.randrange(len(srcs))
    new_srcs = list(srcs)
    new_srcs[slot] = rng.randrange(genome.n_inputs + j)
    genes = list(genome.gates)
    genes[j] = (kind, tuple(new_srcs))
    return Genome(genome.n_inputs, tuple(genes), genome.outputs)


def _add_gate(genome: Genome, rng: random.Random, max_gates: int) -> Genome:
    if len(genome.gates) >= max_gates:
        return _rewire(genome, rng)
    limit = genome.n_lines
    genes = genome.gates + (_random_gene(rng, limit),)
    outputs = genome.outputs
    if rng.random() < 0.5:
        # Make the new gate observable by retargeting one output at it.
        k = rng.randrange(len(outputs))
        outputs = outputs[:k] + (limit,) + outputs[k + 1 :]
    return Genome(genome.n_inputs, genes, outputs)


def _delete_gate(genome: Genome, rng: random.Random) -> Genome:
    if len(genome.gates) <= 1:
        return _rewire(genome, rng)
    j = rng.randrange(len(genome.gates))
    victim_line = genome.n_inputs + j
    _kind, srcs = genome.gates[j]
    replacement = rng.choice(srcs)

    def remap(line: int) -> int:
        if line == victim_line:
            return replacement
        if line > victim_line:
            return line - 1
        return line

    genes: List[GateGene] = []
    for k, (kind, gsrcs) in enumerate(genome.gates):
        if k == j:
            continue
        genes.append((kind, tuple(remap(s) for s in gsrcs)))
    outputs = tuple(remap(o) for o in genome.outputs)
    return Genome(genome.n_inputs, tuple(genes), outputs)


def _dual_swap(genome: Genome, rng: random.Random) -> Genome:
    if not genome.gates:
        return genome
    j = rng.randrange(len(genome.gates))
    kind, srcs = genome.gates[j]
    genes = list(genome.gates)
    genes[j] = (DUAL_KIND.get(kind, kind), srcs)
    return Genome(genome.n_inputs, tuple(genes), genome.outputs)


def _retarget_output(genome: Genome, rng: random.Random) -> Genome:
    k = rng.randrange(len(genome.outputs))
    outputs = list(genome.outputs)
    outputs[k] = rng.randrange(genome.n_lines)
    return Genome(genome.n_inputs, genome.gates, tuple(outputs))


#: ``(weight, name)`` rows of the mutation roulette; the dual swap is
#: deliberately over-weighted relative to its reach — it is the move
#: that explores *within* the alternating design space.
_MUTATIONS = (
    (4, "substitute"),
    (5, "rewire"),
    (2, "add"),
    (2, "delete"),
    (3, "dual"),
    (1, "retarget"),
)
_TOTAL_WEIGHT = sum(w for w, _ in _MUTATIONS)


def mutate(genome: Genome, rng: random.Random, max_gates: int = 24) -> Genome:
    """Apply one weighted-random point mutation."""
    pick = rng.randrange(_TOTAL_WEIGHT)
    for weight, name in _MUTATIONS:
        if pick < weight:
            break
        pick -= weight
    if name == "substitute":
        child = _substitute_kind(genome, rng)
    elif name == "rewire":
        child = _rewire(genome, rng)
    elif name == "add":
        child = _add_gate(genome, rng, max_gates)
    elif name == "delete":
        child = _delete_gate(genome, rng)
    elif name == "dual":
        child = _dual_swap(genome, rng)
    else:
        child = _retarget_output(genome, rng)
    return child.validate()


def crossover(a: Genome, b: Genome, rng: random.Random) -> Genome:
    """One-point crossover: a prefix of ``a``'s gates, a suffix of
    ``b``'s, with suffix sources clamped below their new line index (the
    clamp preserves acyclicity without a repair pass).  Outputs come
    from either parent, clamped into the child's line range."""
    if a.n_inputs != b.n_inputs:
        raise ValueError("crossover parents must share the input count")
    cut_a = rng.randint(0, len(a.gates))
    cut_b = rng.randint(0, len(b.gates))
    genes: List[GateGene] = list(a.gates[:cut_a])
    for kind, srcs in b.gates[cut_b:]:
        limit = a.n_inputs + len(genes)
        genes.append((kind, tuple(s % limit for s in srcs)))
    if not genes:
        donor = a if cut_a or not b.gates else b
        genes = list(donor.gates[:1] or [("BUF", (0,))])
    n_lines = a.n_inputs + len(genes)
    template = a.outputs if rng.random() < 0.5 else b.outputs
    outputs = tuple(o % n_lines for o in template)
    return Genome(a.n_inputs, tuple(genes), outputs).validate()
