"""Candidate fitness: vectorized alternation sweeps + fault coverage.

A candidate's fitness has four graded components, each derived from the
same machinery the verification paths use (so the search optimizes the
real acceptance criteria, not a proxy):

* **correctness** — Hamming distance between the candidate's exhaustive
  output tables and the spec's (Algorithm 3.1's functional half);
* **self-duality** — the number of points where ``F(X̄) ≠ ¬F(X)``
  (:func:`repro.engine.reflect_bits` over the same tables);
* **coverage** — the collapsed stuck-at universe swept through
  :func:`repro.engine.vectorized.chunk_statuses` on the word-axis block
  backends; ``dangerous`` faults (wrong *and* still alternating) are
  the self-checking violations the search minimizes;
* **area** — :func:`repro.scal.costs.network_cost` under the Table 4.1
  unit model, a small pressure toward the Pareto front's cheap end.

The module exposes two evaluators with byte-identical records: the
**batched** path (big-int tables + block-backend sweeps — what
campaigns use) and the **scalar** path (per-point pointwise simulation
per fault — the bench baseline that prices the batching).

:func:`evaluate_chunk` is the transport-facing entry point: the
``synth`` chunk backend in :func:`repro.engine.vectorized.chunk_statuses`
hands it a chunk of task dicts and ships back one JSON record per task.
Every per-candidate exception is captured *inside* the record (an
invalid candidate is a normal low-fitness outcome, not a chunk failure
for the supervisor to retry).
"""

from __future__ import annotations

import dataclasses
import json
from typing import Dict, List, Optional, Sequence, Tuple

from ..core.collapse import collapse_stem_faults
from ..engine import NetworkEngine, reflect_bits
from ..engine.vectorized import chunk_statuses, classify_status, select_backend
from ..scal.costs import network_cost
from .genome import Genome
from .specs import SynthSpec


def _popcount(bits: int) -> int:
    return bin(bits).count("1")


@dataclasses.dataclass(frozen=True)
class FitnessRecord:
    """One candidate's full scorecard (JSON-round-trippable)."""

    ok: bool
    error: str = ""
    spec_hamming: int = 0
    dual_defects: int = 0
    points: int = 0
    n_outputs: int = 0
    faults: int = 0
    dangerous: int = 0
    detected: int = 0
    silent: int = 0
    gates: int = 0
    gate_inputs: int = 0
    cost: float = 0.0
    backend: str = ""

    @property
    def perfect(self) -> bool:
        """Functionally correct, self-dual, and self-checking."""
        return (
            self.ok
            and self.spec_hamming == 0
            and self.dual_defects == 0
            and self.dangerous == 0
        )

    @property
    def coverage(self) -> float:
        """Fraction of the collapsed universe that is *not* a
        self-checking violation."""
        if self.faults <= 0:
            return 1.0 if self.ok else 0.0
        return 1.0 - self.dangerous / self.faults

    @property
    def score(self) -> float:
        """Scalar rank: correctness and coverage dominate, duality and
        detection shape the slope, area breaks ties toward small
        networks.  Invalid candidates pin to ``-1.0``."""
        if not self.ok:
            return -1.0
        cells = self.points * self.n_outputs
        correctness = 1.0 - self.spec_hamming / cells
        duality = 1.0 - self.dual_defects / cells
        detection = self.detected / self.faults if self.faults else 0.0
        return (
            3.0 * correctness
            + 1.0 * duality
            + 2.0 * self.coverage
            + 0.5 * detection
            - 0.001 * self.cost
        )

    def to_json(self) -> str:
        return json.dumps(
            dataclasses.asdict(self), sort_keys=True, separators=(",", ":")
        )

    @classmethod
    def from_json(cls, text: str) -> "FitnessRecord":
        return cls(**json.loads(text))


def make_task(
    genome: Genome, spec: SynthSpec, mode: str = "batched"
) -> Dict[str, object]:
    """The transport-safe (plain-JSON) evaluation task for one candidate."""
    return {
        "genome": genome.canonical(),
        "input_names": list(spec.input_names),
        "tables": list(spec.tables),
        "mode": mode,
    }


def _fault_universe(network) -> List:
    """The candidate's collapsed stem universe in a canonical order
    (collapse representatives are set-derived; sorting pins the order so
    every rung and both evaluators agree record-for-record)."""
    return sorted(
        collapse_stem_faults(network), key=lambda f: (f.line, f.value)
    )


def _scalar_tables(engine: NetworkEngine, fault) -> Tuple[int, ...]:
    """Assemble exhaustive output tables one point at a time — the
    deliberately unbatched baseline."""
    comp = engine.compiled
    n = comp.n_inputs
    outs = [0] * len(comp.out_idx)
    for p in range(1 << n):
        point = tuple((p >> i) & 1 for i in range(n))
        values = engine.pointwise.output_values(point, fault)
        for k, v in enumerate(values):
            if v:
                outs[k] |= 1 << p
    return tuple(outs)


def _scalar_statuses(
    engine: NetworkEngine, universe: Sequence
) -> Tuple[Tuple[int, ...], List[str]]:
    """Per-fault scalar classification replicating
    :meth:`PackedFallbackBackend.response_triple` arithmetic exactly, so
    statuses match the block backends bit for bit."""
    n = engine.compiled.n_inputs
    full = (1 << (1 << n)) - 1
    normal = _scalar_tables(engine, None)
    normal_alt = tuple(bits ^ reflect_bits(bits, n) for bits in normal)
    statuses: List[str] = []
    for fault in universe:
        faulty = _scalar_tables(engine, fault)
        wrong = 0
        detected = 0
        all_alternate = full
        for pos, t_fault in enumerate(faulty):
            t_normal = normal[pos]
            if t_fault == t_normal:
                alternates = normal_alt[pos]
            else:
                alternates = t_fault ^ reflect_bits(t_fault, n)
                wrong |= t_normal ^ t_fault
            detected |= alternates ^ full
            all_alternate &= alternates
        affected = wrong | reflect_bits(wrong, n)
        violations = affected & all_alternate
        statuses.append(classify_status(detected, violations))
    return normal, statuses


def evaluate_task(task: Dict[str, object]) -> FitnessRecord:
    """Score one candidate; exceptions become ``ok=False`` records."""
    try:
        genome = Genome.from_json(str(task["genome"]))
        input_names = tuple(str(x) for x in task["input_names"])
        spec_tables = tuple(int(t) for t in task["tables"])
        mode = str(task.get("mode", "batched"))
        if len(spec_tables) != len(genome.outputs):
            raise ValueError(
                f"genome has {len(genome.outputs)} outputs, "
                f"spec has {len(spec_tables)}"
            )
        network = genome.to_network(input_names)
        engine = NetworkEngine(network)
        n = genome.n_inputs
        points = 1 << n
        full = (1 << points) - 1
        universe = _fault_universe(network)
        if mode == "scalar":
            bits, statuses = _scalar_statuses(engine, universe)
            backend = "scalar"
        else:
            bits = engine.bitmask.output_bits(None)
            backend = select_backend(n, len(universe))
            statuses = chunk_statuses(engine, universe, backend)
        spec_hamming = sum(
            _popcount((b ^ t) & full) for b, t in zip(bits, spec_tables)
        )
        dual_defects = sum(
            _popcount(~(b ^ reflect_bits(b, n)) & full) for b in bits
        )
        return FitnessRecord(
            ok=True,
            spec_hamming=spec_hamming,
            dual_defects=dual_defects,
            points=points,
            n_outputs=len(spec_tables),
            faults=len(universe),
            dangerous=statuses.count("dangerous"),
            detected=statuses.count("detected"),
            silent=statuses.count("silent"),
            gates=network.gate_count(include_buffers=False),
            gate_inputs=network.gate_input_count(),
            cost=network_cost(network),
            backend=backend,
        )
    except Exception as error:
        return FitnessRecord(
            ok=False, error=f"{type(error).__name__}: {error}"
        )


def evaluate_chunk(tasks: Sequence[Dict[str, object]]) -> List[str]:
    """The ``synth`` chunk-backend entry: one JSON record per task, in
    order, with per-candidate failures folded into the records."""
    return [evaluate_task(task).to_json() for task in tasks]
