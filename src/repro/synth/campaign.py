"""The supervised synthesis/repair campaign driver.

:class:`SynthCampaign` runs a deterministic generational loop: rank the
population by :class:`~repro.synth.fitness.FitnessRecord` score, keep an
elite, breed the rest by tournament selection with seeded
mutation/crossover, and charge every generation's *fresh* candidates as
one supervised batch through
:func:`repro.engine.run_generation_batch` — so synthesis inherits the
whole execution fabric (transport ladder, retries with splitting, work
stealing, dead-worker replacement) that fault campaigns already have.

Determinism contract: a campaign is a pure function of
``(spec, seed, population, tunables)``.  All randomness flows through
one seeded :class:`random.Random`; candidate ranking breaks score ties
on the canonical genome JSON; fitness memoization is a pure cache
(re-evaluation is deterministic), so the per-generation checkpoint —
population, RNG state, best-so-far, history, Pareto archive, all behind
a config fingerprint — resumes to a byte-identical continuation.

Flight events: ``synth.generation`` per generation, ``synth.improved``
when the best-so-far changes, one ``synth.report`` at the end; metrics
are the ``repro_synth_*`` family.
"""

from __future__ import annotations

import dataclasses
import hashlib
import json
import os
import random
import tempfile
from typing import Dict, List, Optional, Sequence, Tuple

from .. import obs
from ..engine import (
    CancelToken,
    CheckpointError,
    FaultSweep,
    run_generation_batch,
)
from ..logic.network import Network
from ..scal.costs import REYNOLDS_COST_FACTOR, network_cost
from .fitness import FitnessRecord, make_task
from .genome import Genome
from .operators import crossover, mutate, random_genome
from .specs import SynthSpec, spec_from_network

_REG = obs.REGISTRY
_M_GENS = _REG.counter(
    "repro_synth_generations_total", "Synthesis generations completed"
)
_M_EVALS = _REG.counter(
    "repro_synth_evaluations_total",
    "Candidate fitness evaluations, by memo outcome",
)
_M_IMPROVED = _REG.counter(
    "repro_synth_improvements_total", "Best-so-far replacements"
)
_M_BEST = _REG.gauge(
    "repro_synth_best_score", "Best fitness score of the running campaign"
)
_M_CHECKPOINTS = _REG.counter(
    "repro_synth_checkpoint_writes_total", "Synthesis checkpoint flushes"
)


class SynthInterrupted(RuntimeError):
    """Raised when a campaign stops early on purpose (the
    ``abort_after_generations`` drill hook); the checkpoint holds every
    completed generation and ``--resume`` continues deterministically."""


class SynthCheckpoint:
    """Atomic JSON checkpoint of the full campaign state.

    Same discipline as :class:`repro.engine.CampaignCheckpoint`: a
    config fingerprint guards against resuming someone else's search,
    and every flush goes through a same-directory temp file + ``fsync``
    + ``os.replace`` so a crash can never leave a torn artifact.
    """

    VERSION = 1

    def __init__(self, path: str, fingerprint: str) -> None:
        self.path = path
        self.fingerprint = fingerprint

    def save(self, state: Dict[str, object]) -> None:
        payload = dict(state)
        payload["version"] = self.VERSION
        payload["fingerprint"] = self.fingerprint
        directory = os.path.dirname(os.path.abspath(self.path))
        fd, tmp = tempfile.mkstemp(
            dir=directory, prefix=".synth-ckpt-", suffix=".tmp"
        )
        try:
            with os.fdopen(fd, "w") as handle:
                json.dump(payload, handle, separators=(",", ":"))
                handle.flush()
                os.fsync(handle.fileno())
            os.replace(tmp, self.path)
        except BaseException:
            try:
                os.unlink(tmp)
            except OSError:
                pass
            raise
        if _REG.enabled:
            _M_CHECKPOINTS.inc()

    def load(self) -> Dict[str, object]:
        try:
            with open(self.path) as handle:
                data = json.load(handle)
        except FileNotFoundError:
            raise CheckpointError(f"no checkpoint at {self.path!r}")
        except (OSError, ValueError) as error:
            raise CheckpointError(f"unreadable checkpoint: {error}")
        if not isinstance(data, dict) or data.get("version") != self.VERSION:
            raise CheckpointError("unsupported synth checkpoint version")
        if data.get("fingerprint") != self.fingerprint:
            raise CheckpointError(
                "checkpoint belongs to a different synthesis campaign "
                "(spec/seed/tunables changed)"
            )
        return data


@dataclasses.dataclass
class SynthReport:
    """Structured result of one synthesis/repair campaign."""

    spec: str
    seed: int
    mode: str
    generations_run: int
    evaluations: int
    improvements: int
    converged: bool
    best_genome: str
    best_fingerprint: str
    best_generation: int
    best_record: FitnessRecord
    history: List[dict]
    pareto: List[dict]
    wall_seconds: float = 0.0
    batches: int = 0
    chunks: int = 0
    retries: int = 0
    degradations: int = 0
    workers_replaced: int = 0
    steals: int = 0
    checkpoint_path: Optional[str] = None
    resumed_generation: int = 0
    cost_reference: Optional[float] = None

    @property
    def cost_factor(self) -> Optional[float]:
        """Winner area over the reference realization's area — the
        measured analogue of Reynolds' 1.8 conversion factor."""
        if self.cost_reference and self.best_record.ok:
            return self.best_record.cost / self.cost_reference
        return None

    def to_dict(self) -> dict:
        data = dataclasses.asdict(self)
        data["best_record"] = dataclasses.asdict(self.best_record)
        data["best_score"] = self.best_record.score
        data["best_perfect"] = self.best_record.perfect
        data["cost_factor"] = self.cost_factor
        return data

    def summary(self) -> str:
        best = self.best_record
        lines = [
            f"synth {self.mode} campaign: spec={self.spec} seed={self.seed}",
            f"  generations: {self.generations_run}"
            f" (resumed at {self.resumed_generation})"
            if self.resumed_generation
            else f"  generations: {self.generations_run}",
            f"  evaluations: {self.evaluations}"
            f"  improvements: {self.improvements}"
            f"  converged: {'yes' if self.converged else 'no'}",
            f"  best: score={best.score:.4f} perfect={best.perfect}"
            f" gen={self.best_generation} [{self.best_fingerprint[:12]}]",
            f"    hamming={best.spec_hamming} dual_defects={best.dual_defects}"
            f" dangerous={best.dangerous}/{best.faults}"
            f" detected={best.detected} silent={best.silent}",
            f"    gates={best.gates} gate_inputs={best.gate_inputs}"
            f" cost={best.cost:g}",
        ]
        if self.cost_reference is not None:
            factor = self.cost_factor
            lines.append(
                f"  cost model: reference={self.cost_reference:g}"
                + (
                    f" measured_factor={factor:.2f}"
                    f" (Reynolds general: {REYNOLDS_COST_FACTOR})"
                    if factor is not None
                    else ""
                )
            )
        if self.pareto:
            lines.append("  pareto front (cost vs coverage):")
            for entry in self.pareto:
                lines.append(
                    f"    cost={entry['cost']:g}"
                    f" coverage={entry['coverage']:.3f}"
                    f" gates={entry['gates']}"
                    f" dangerous={entry['dangerous']}"
                    f" [{entry['fingerprint'][:12]}]"
                )
        lines.append(
            f"  execution: batches={self.batches} chunks={self.chunks}"
            f" retries={self.retries} degradations={self.degradations}"
            f" wall={self.wall_seconds:.2f}s"
        )
        return "\n".join(lines)


def _pareto_insert(front: List[dict], entry: dict) -> List[dict]:
    """Insert into the (cost↓, coverage↑) nondominated archive."""
    for other in front:
        if other["genome"] == entry["genome"]:
            return front
        if (
            other["cost"] <= entry["cost"]
            and other["coverage"] >= entry["coverage"]
        ):
            return front  # dominated (or tied) by an incumbent
    kept = [
        other
        for other in front
        if not (
            entry["cost"] <= other["cost"]
            and entry["coverage"] >= other["coverage"]
        )
    ]
    kept.append(entry)
    kept.sort(key=lambda e: (e["cost"], -e["coverage"], e["genome"]))
    return kept


class SynthCampaign:
    """One population-based synthesis or repair search (module docstring
    has the determinism contract)."""

    def __init__(
        self,
        spec: SynthSpec,
        seed: int = 0,
        population: int = 16,
        generations: int = 40,
        budget: Optional[int] = None,
        max_gates: int = 24,
        elite: int = 2,
        tournament: int = 3,
        crossover_rate: float = 0.4,
        init_gates: Optional[int] = None,
        mode: str = "synth",
        seed_population: Optional[Sequence[Genome]] = None,
        host_network: Optional[Network] = None,
        cost_reference: Optional[float] = None,
        processes: Optional[int] = None,
        timeout: Optional[float] = None,
        transport: str = "auto",
        checkpoint: Optional[str] = None,
        resume: bool = False,
        abort_after_generations: Optional[int] = None,
        cancel: Optional[CancelToken] = None,
    ) -> None:
        if population < 2:
            raise ValueError("population must be at least 2")
        if not 0 < elite < population:
            raise ValueError("elite must be in (0, population)")
        if resume and checkpoint is None:
            raise CheckpointError("resume requires a checkpoint path")
        if budget is not None and budget < population:
            raise ValueError(
                "budget must cover at least one full generation "
                f"({population} evaluations)"
            )
        self.spec = spec
        self.seed = seed
        self.population_size = population
        self.generations = generations
        self.budget = budget
        self.max_gates = max_gates
        self.elite = elite
        self.tournament = tournament
        self.crossover_rate = crossover_rate
        self.init_gates = init_gates
        self.mode = mode
        self.seed_population = (
            tuple(seed_population) if seed_population else None
        )
        self.host_network = host_network
        if cost_reference is None:
            # Anchor the Pareto/cost reporting to the Table 4.1 cost
            # model: the two-level Yamamoto reference realization (or
            # the repair host) is the denominator of cost_factor.
            cost_reference = network_cost(
                host_network
                if host_network is not None
                else spec.reference_network()
            )
        self.cost_reference = cost_reference
        self.processes = processes
        self.timeout = timeout
        self.transport = transport
        self.checkpoint_path = checkpoint
        self.resume = resume
        self.abort_after_generations = abort_after_generations
        self.cancel = cancel
        self._memo: Dict[str, FitnessRecord] = {}

    # ------------------------------------------------------------------
    # identity
    # ------------------------------------------------------------------
    def fingerprint(self) -> str:
        """Campaign identity for checkpoint validation.  Execution knobs
        (processes/transport/timeout) and the stop conditions
        (generations/budget) are excluded on purpose: they change how
        far or how fast the search runs, never what it computes."""
        payload = json.dumps(
            {
                "spec": self.spec.fingerprint(),
                "seed": self.seed,
                "population": self.population_size,
                "max_gates": self.max_gates,
                "elite": self.elite,
                "tournament": self.tournament,
                "crossover_rate": self.crossover_rate,
                "init_gates": self.init_gates,
                "mode": self.mode,
                "seeded": [
                    g.fingerprint() for g in (self.seed_population or ())
                ],
            },
            sort_keys=True,
            separators=(",", ":"),
        )
        return hashlib.sha256(payload.encode("ascii")).hexdigest()

    # ------------------------------------------------------------------
    # the generational loop
    # ------------------------------------------------------------------
    def run(self) -> SynthReport:
        watch = obs.Stopwatch()
        rng = random.Random(f"repro-synth:{self.seed}")
        store = (
            SynthCheckpoint(self.checkpoint_path, self.fingerprint())
            if self.checkpoint_path is not None
            else None
        )
        state = self._initial_state(rng, store)
        population: List[Genome] = state["population"]
        generation: int = state["generation"]
        resumed_at = generation if self.resume else 0
        evaluations: int = state["evaluations"]
        improvements: int = state["improvements"]
        best: Optional[Tuple[Genome, FitnessRecord, int]] = state["best"]
        history: List[dict] = state["history"]
        pareto: List[dict] = state["pareto"]
        converged: bool = state["converged"]
        sweep = FaultSweep(
            self.host_network
            if self.host_network is not None
            else self.spec.reference_network()
        )
        totals = {
            "batches": 0,
            "chunks": 0,
            "retries": 0,
            "degradations": 0,
            "workers_replaced": 0,
            "steals": 0,
        }
        completed_this_run = 0

        while (
            not converged
            and generation < self.generations
            and (
                self.budget is None
                or evaluations + len(population) <= self.budget
            )
        ):
            records, fresh = self._evaluate(sweep, population, totals)
            evaluations += len(population)
            ranked = sorted(
                zip(population, records),
                key=lambda pair: (-pair[1].score, pair[0].canonical()),
            )
            top_genome, top_record = ranked[0]
            if best is None or top_record.score > best[1].score:
                best = (top_genome, top_record, generation)
                improvements += 1
                _M_IMPROVED.inc()
                obs.event(
                    "synth.improved",
                    generation=generation,
                    score=top_record.score,
                    fingerprint=top_genome.fingerprint(),
                    gates=top_record.gates,
                    cost=top_record.cost,
                    spec_hamming=top_record.spec_hamming,
                    dual_defects=top_record.dual_defects,
                    dangerous=top_record.dangerous,
                )
            for genome, record in ranked:
                if record.ok and record.spec_hamming == 0 and record.dual_defects == 0:
                    pareto = _pareto_insert(
                        pareto,
                        {
                            "genome": genome.canonical(),
                            "fingerprint": genome.fingerprint(),
                            "cost": record.cost,
                            "coverage": record.coverage,
                            "gates": record.gates,
                            "dangerous": record.dangerous,
                            "generation": generation,
                        },
                    )
            mean_score = sum(r.score for r in records) / len(records)
            history.append(
                {
                    "generation": generation,
                    "best_score": best[1].score,
                    "best": best[0].fingerprint(),
                    "gen_best_score": top_record.score,
                    "mean_score": mean_score,
                    "evaluations": evaluations,
                    "pareto": len(pareto),
                }
            )
            obs.event(
                "synth.generation",
                generation=generation,
                best_score=best[1].score,
                gen_best_score=top_record.score,
                mean_score=mean_score,
                fresh=fresh,
                evaluations=evaluations,
                pareto=len(pareto),
            )
            _M_GENS.inc()
            if _REG.enabled:
                _M_BEST.set(best[1].score)
            generation += 1
            completed_this_run += 1
            converged = best[1].perfect
            if not converged:
                population = self._breed(ranked, rng)
            if store is not None:
                store.save(
                    self._state_payload(
                        rng,
                        population,
                        generation,
                        evaluations,
                        improvements,
                        best,
                        history,
                        pareto,
                        converged,
                    )
                )
            if (
                self.abort_after_generations is not None
                and completed_this_run >= self.abort_after_generations
                and not converged
                and generation < self.generations
            ):
                raise SynthInterrupted(
                    f"synthesis interrupted after {completed_this_run} "
                    f"generations (checkpoint {self.checkpoint_path!r} is "
                    f"resumable)"
                )

        if best is None:
            raise RuntimeError("campaign ended before any evaluation")
        report = SynthReport(
            spec=self.spec.name,
            seed=self.seed,
            mode=self.mode,
            generations_run=generation,
            evaluations=evaluations,
            improvements=improvements,
            converged=converged,
            best_genome=best[0].canonical(),
            best_fingerprint=best[0].fingerprint(),
            best_generation=best[2],
            best_record=best[1],
            history=history,
            pareto=[dict(entry) for entry in pareto],
            wall_seconds=watch.elapsed(),
            checkpoint_path=self.checkpoint_path,
            resumed_generation=resumed_at,
            cost_reference=self.cost_reference,
            **totals,
        )
        obs.event(
            "synth.report",
            spec=report.spec,
            seed=report.seed,
            mode=report.mode,
            generations=report.generations_run,
            evaluations=report.evaluations,
            improvements=report.improvements,
            best_score=report.best_record.score,
            best_fingerprint=report.best_fingerprint,
            converged=report.converged,
            pareto=len(report.pareto),
            wall_seconds=report.wall_seconds,
        )
        return report

    # ------------------------------------------------------------------
    # state plumbing
    # ------------------------------------------------------------------
    def _initial_state(
        self, rng: random.Random, store: Optional[SynthCheckpoint]
    ) -> Dict[str, object]:
        if self.resume:
            assert store is not None
            data = store.load()
            rng.setstate(_rng_state_from_json(data["rng_state"]))
            best = None
            if data["best"] is not None:
                best = (
                    Genome.from_json(data["best"]["genome"]),
                    FitnessRecord.from_json(data["best"]["record"]),
                    int(data["best"]["generation"]),
                )
            return {
                "population": [
                    Genome.from_json(text) for text in data["population"]
                ],
                "generation": int(data["generation"]),
                "evaluations": int(data["evaluations"]),
                "improvements": int(data["improvements"]),
                "best": best,
                "history": list(data["history"]),
                "pareto": list(data["pareto"]),
                "converged": bool(data["converged"]),
            }
        if self.seed_population is not None:
            population = list(self.seed_population)
            while len(population) < self.population_size:
                population.append(
                    mutate(
                        population[rng.randrange(len(population))],
                        rng,
                        self.max_gates,
                    )
                )
            population = population[: self.population_size]
        else:
            n = self.spec.n_inputs
            n_outputs = len(self.spec.tables)
            population = [
                random_genome(
                    rng,
                    n,
                    self.init_gates
                    if self.init_gates is not None
                    else rng.randint(3, max(4, self.max_gates // 3)),
                    n_outputs,
                )
                for _ in range(self.population_size)
            ]
        return {
            "population": population,
            "generation": 0,
            "evaluations": 0,
            "improvements": 0,
            "best": None,
            "history": [],
            "pareto": [],
            "converged": False,
        }

    def _state_payload(
        self,
        rng: random.Random,
        population: List[Genome],
        generation: int,
        evaluations: int,
        improvements: int,
        best: Optional[Tuple[Genome, FitnessRecord, int]],
        history: List[dict],
        pareto: List[dict],
        converged: bool,
    ) -> Dict[str, object]:
        return {
            "spec": self.spec.name,
            "seed": self.seed,
            "generation": generation,
            "evaluations": evaluations,
            "improvements": improvements,
            "rng_state": _rng_state_to_json(rng.getstate()),
            "population": [g.canonical() for g in population],
            "best": (
                {
                    "genome": best[0].canonical(),
                    "record": best[1].to_json(),
                    "generation": best[2],
                }
                if best is not None
                else None
            ),
            "history": history,
            "pareto": pareto,
            "converged": converged,
        }

    # ------------------------------------------------------------------
    # evaluation and breeding
    # ------------------------------------------------------------------
    def _evaluate(
        self,
        sweep: FaultSweep,
        population: Sequence[Genome],
        totals: Dict[str, int],
    ) -> Tuple[List[FitnessRecord], int]:
        records: List[Optional[FitnessRecord]] = [None] * len(population)
        tasks = []
        fresh_index = []
        for i, genome in enumerate(population):
            cached = self._memo.get(genome.canonical())
            if cached is not None:
                records[i] = cached
            else:
                tasks.append(make_task(genome, self.spec))
                fresh_index.append(i)
        if tasks:
            payloads, batch_report = run_generation_batch(
                sweep,
                tasks,
                processes=self.processes,
                timeout=self.timeout,
                transport=self.transport,
                cancel=self.cancel,
            )
            for i, payload in zip(fresh_index, payloads):
                record = FitnessRecord.from_json(payload)
                records[i] = record
                self._memo[population[i].canonical()] = record
            totals["batches"] += 1
            totals["chunks"] += batch_report.chunks_completed
            totals["retries"] += len(batch_report.retries)
            totals["degradations"] += len(batch_report.degradations)
            totals["workers_replaced"] += batch_report.workers_replaced
            totals["steals"] += batch_report.steals
        if _REG.enabled:
            if tasks:
                _M_EVALS.inc(len(tasks), outcome="fresh")
            memo_hits = len(population) - len(tasks)
            if memo_hits:
                _M_EVALS.inc(memo_hits, outcome="memo")
        return [r for r in records if r is not None], len(tasks)

    def _breed(
        self,
        ranked: List[Tuple[Genome, FitnessRecord]],
        rng: random.Random,
    ) -> List[Genome]:
        next_population = [genome for genome, _ in ranked[: self.elite]]

        def pick() -> Genome:
            contenders = [
                rng.randrange(len(ranked)) for _ in range(self.tournament)
            ]
            return ranked[min(contenders)][0]

        while len(next_population) < self.population_size:
            if rng.random() < self.crossover_rate:
                child = crossover(pick(), pick(), rng)
                child = mutate(child, rng, self.max_gates)
            else:
                child = mutate(pick(), rng, self.max_gates)
            next_population.append(child)
        return next_population


def _rng_state_to_json(state) -> list:
    return [state[0], list(state[1]), state[2]]


def _rng_state_from_json(data) -> tuple:
    return (data[0], tuple(data[1]), data[2])


# ----------------------------------------------------------------------
# repair mode
# ----------------------------------------------------------------------
def damage_network(
    network: Network, seed: int, damage: int, max_gates: Optional[int] = None
) -> Genome:
    """Apply ``damage`` seeded mutations to a network's genome — the
    injected-fault half of the repair drill."""
    genome = Genome.from_network(network)
    rng = random.Random(f"repro-synth-damage:{seed}")
    limit = max_gates if max_gates is not None else len(genome.gates) + 4
    for _ in range(damage):
        genome = mutate(genome, rng, limit)
    return genome


def repair_campaign(
    network: Network,
    seed: int = 0,
    damage: int = 3,
    **kwargs,
) -> SynthCampaign:
    """Build a repair-mode campaign: derive the spec from the pristine
    network, damage it with ``damage`` seeded mutations, and seed the
    population from the damaged genome.  The pristine area anchors the
    cost comparison."""
    spec = spec_from_network(network)
    damaged = damage_network(
        network, seed, damage, kwargs.get("max_gates")
    )
    kwargs.setdefault("cost_reference", network_cost(network))
    return SynthCampaign(
        spec,
        seed=seed,
        mode="repair",
        seed_population=[damaged],
        host_network=network,
        **kwargs,
    )
