"""Flat genome representation for synthesis/repair campaigns.

A :class:`Genome` is the searchable form of a combinational netlist: a
line-indexed gate list in strict topological order.  Lines ``0..n-1``
are the primary inputs; gate ``j`` defines line ``n + j`` and may read
only lines strictly below it, so every genome is acyclic *by
construction* — mutation operators never need a cycle check, only an
index clamp.  Outputs are line indices (duplicates allowed: the network
conversion wraps each output in its own buffer, which also gives every
candidate observable output stems for the fault universe).

The canonical JSON form (sorted keys, no whitespace) is the genome's
identity everywhere: the fitness memo key, the checkpoint payload, and
the sha256 :meth:`fingerprint` that determinism drills compare
byte-for-byte.
"""

from __future__ import annotations

import dataclasses
import hashlib
import json
from typing import Optional, Sequence, Tuple

from ..logic.gates import GateKind, check_arity
from ..logic.network import Network, NetworkBuilder

GateGene = Tuple[str, Tuple[int, ...]]


class GenomeError(ValueError):
    """A genome fails structural validation (bad kind, arity, or a
    source index at or above the gate's own line)."""


@dataclasses.dataclass(frozen=True)
class Genome:
    """An immutable gate-list genome (see module docstring)."""

    n_inputs: int
    gates: Tuple[GateGene, ...]
    outputs: Tuple[int, ...]

    @property
    def n_lines(self) -> int:
        return self.n_inputs + len(self.gates)

    # ------------------------------------------------------------------
    # validation
    # ------------------------------------------------------------------
    def validate(self) -> "Genome":
        if self.n_inputs < 1:
            raise GenomeError("genome needs at least one input")
        for j, (kind_name, srcs) in enumerate(self.gates):
            try:
                kind = GateKind[kind_name]
            except KeyError:
                raise GenomeError(f"gate {j} has unknown kind {kind_name!r}")
            try:
                check_arity(kind, len(srcs))
            except ValueError as error:
                raise GenomeError(f"gate {j}: {error}")
            limit = self.n_inputs + j
            for src in srcs:
                if not 0 <= src < limit:
                    raise GenomeError(
                        f"gate {j} reads line {src} outside [0, {limit})"
                    )
        if not self.outputs:
            raise GenomeError("genome needs at least one output")
        for out in self.outputs:
            if not 0 <= out < self.n_lines:
                raise GenomeError(f"output line {out} does not exist")
        return self

    # ------------------------------------------------------------------
    # identity
    # ------------------------------------------------------------------
    def canonical(self) -> str:
        """The canonical JSON identity (memo key, checkpoint payload)."""
        return json.dumps(
            {
                "n_inputs": self.n_inputs,
                "gates": [[kind, list(srcs)] for kind, srcs in self.gates],
                "outputs": list(self.outputs),
            },
            sort_keys=True,
            separators=(",", ":"),
        )

    def fingerprint(self) -> str:
        return hashlib.sha256(self.canonical().encode("ascii")).hexdigest()

    @classmethod
    def from_json(cls, text: str) -> "Genome":
        data = json.loads(text)
        return cls(
            n_inputs=int(data["n_inputs"]),
            gates=tuple(
                (str(kind), tuple(int(s) for s in srcs))
                for kind, srcs in data["gates"]
            ),
            outputs=tuple(int(o) for o in data["outputs"]),
        ).validate()

    # ------------------------------------------------------------------
    # network conversion
    # ------------------------------------------------------------------
    def to_network(
        self,
        input_names: Optional[Sequence[str]] = None,
        name: str = "synth",
    ) -> Network:
        """Build the :class:`Network` this genome encodes.

        Every output is wrapped in a dedicated ``y{k}`` buffer so
        duplicate output lines (and outputs fed straight from a primary
        input) stay legal, and every candidate exposes uniform output
        stems to the fault model.  Buffers cost nothing under the
        Table 4.1 unit model.
        """
        self.validate()
        if input_names is None:
            input_names = tuple(f"x{i}" for i in range(self.n_inputs))
        if len(input_names) != self.n_inputs:
            raise GenomeError("input_names length must equal n_inputs")
        builder = NetworkBuilder(list(input_names), name=name)
        lines = list(input_names)
        for j, (kind_name, srcs) in enumerate(self.gates):
            lines.append(
                builder.add(
                    f"g{j}", GateKind[kind_name], [lines[s] for s in srcs]
                )
            )
        out_names = []
        for k, out in enumerate(self.outputs):
            out_names.append(builder.add(f"y{k}", GateKind.BUF, [lines[out]]))
        return builder.build(out_names)

    @classmethod
    def from_network(cls, network: Network) -> "Genome":
        """Flatten an existing network into a genome (repair mode).

        Gates are taken in the network's topological order, so the
        genome's strict below-own-line invariant holds automatically.
        """
        index = {line: i for i, line in enumerate(network.inputs)}
        genes = []
        for gate in network.gates:
            index[gate.name] = len(index)
            genes.append(
                (gate.kind.name, tuple(index[src] for src in gate.inputs))
            )
        return cls(
            n_inputs=len(network.inputs),
            gates=tuple(genes),
            outputs=tuple(index[out] for out in network.outputs),
        ).validate()
