"""Search-based SCAL synthesis/repair campaigns.

The subsystem that turns the engine from an analyzer into a designer:
a population-based stochastic search (per Garvie & Husbands' TSC
synthesis) evolving gate networks toward functional correctness,
self-duality, and self-checking, with every generation's candidates
charged as one supervised batch against the word-axis execution
backends through the ``synth`` chunk seam.

Layers:

* :mod:`repro.synth.genome` — the flat, acyclic-by-construction gate
  list representation with a canonical JSON identity;
* :mod:`repro.synth.operators` — seeded mutation/crossover moves
  (including the dual-pair-preserving swap);
* :mod:`repro.synth.specs` — seed-circuit targets (self-dualized small
  functions plus natively self-dual ones) and repair-mode spec
  derivation;
* :mod:`repro.synth.fitness` — the batched and scalar evaluators with
  byte-identical records, and the transport-facing
  :func:`~repro.synth.fitness.evaluate_chunk`;
* :mod:`repro.synth.campaign` — the deterministic generational driver
  with checkpoint/resume, flight events, metrics, and the
  area-vs-coverage Pareto report.
"""

from .campaign import (
    SynthCampaign,
    SynthCheckpoint,
    SynthInterrupted,
    SynthReport,
    damage_network,
    repair_campaign,
)
from .fitness import FitnessRecord, evaluate_chunk, evaluate_task, make_task
from .genome import Genome, GenomeError
from .operators import crossover, mutate, random_genome
from .specs import SPECS, SynthSpec, spec_from_network

__all__ = [
    "FitnessRecord",
    "Genome",
    "GenomeError",
    "SPECS",
    "SynthCampaign",
    "SynthCheckpoint",
    "SynthInterrupted",
    "SynthReport",
    "SynthSpec",
    "crossover",
    "damage_network",
    "evaluate_chunk",
    "evaluate_task",
    "make_task",
    "mutate",
    "random_genome",
    "repair_campaign",
    "spec_from_network",
]
