"""A library of classic small sequential machines.

Realistic state tables beyond the 0101 detector, used by the sequential
campaigns and the minimization tests:

* :func:`serial_adder` — the canonical 2-input/1-output carry machine;
* :func:`parity_checker` — 1 state bit, output = running parity;
* :func:`modulo_counter` — counts input pulses mod k, flags wraparound;
* :func:`debouncer` — accepts a level change only after two agreeing
  samples (a tiny industrial controller);
* :func:`traffic_light` — a 2-bit cyclic controller with a request
  input (Mealy output = "walk" grant).
"""

from __future__ import annotations

from typing import Dict, Tuple

from ..seq.machine import StateTable


def serial_adder() -> StateTable:
    """Adds two serial bit streams LSB-first; state = carry."""
    table = {
        "C0": {
            (0, 0): ("C0", (0,)),
            (1, 0): ("C0", (1,)),
            (0, 1): ("C0", (1,)),
            (1, 1): ("C1", (0,)),
        },
        "C1": {
            (0, 0): ("C0", (1,)),
            (1, 0): ("C1", (0,)),
            (0, 1): ("C1", (0,)),
            (1, 1): ("C1", (1,)),
        },
    }
    return StateTable(["C0", "C1"], 2, 1, table, "C0", name="serial_adder")


def parity_checker() -> StateTable:
    """Output 1 when an odd number of 1s has been seen so far."""
    table = {
        "EVEN": {(0,): ("EVEN", (0,)), (1,): ("ODD", (1,))},
        "ODD": {(0,): ("ODD", (1,)), (1,): ("EVEN", (0,))},
    }
    return StateTable(["EVEN", "ODD"], 1, 1, table, "EVEN", name="parity")


def modulo_counter(k: int = 5) -> StateTable:
    """Counts 1-pulses modulo ``k``; output pulses on wraparound."""
    if k < 2:
        raise ValueError("modulus must be at least 2")
    states = [f"N{i}" for i in range(k)]
    table: Dict[str, Dict[Tuple[int, ...], Tuple[str, Tuple[int, ...]]]] = {}
    for i, state in enumerate(states):
        nxt = states[(i + 1) % k]
        wrap = 1 if i == k - 1 else 0
        table[state] = {
            (0,): (state, (0,)),
            (1,): (nxt, (wrap,)),
        }
    return StateTable(states, 1, 1, table, states[0], name=f"mod{k}_counter")


def debouncer() -> StateTable:
    """Outputs the debounced level, holding the old level while a change
    is being confirmed (two agreeing samples flip it)."""
    table = {
        "L": {(0,): ("L", (0,)), (1,): ("L1", (0,))},
        "L1": {(0,): ("L", (0,)), (1,): ("H", (0,))},
        "H": {(1,): ("H", (1,)), (0,): ("H0", (1,))},
        "H0": {(1,): ("H", (1,)), (0,): ("L", (1,))},
    }
    return StateTable(["L", "L1", "H", "H0"], 1, 1, table, "L", name="debounce")


def traffic_light() -> StateTable:
    """A cyclic NS/EW controller; input = pedestrian request, output =
    walk grant (only during the all-red state when requested)."""
    table = {
        "NS_GREEN": {(0,): ("NS_YELLOW", (0,)), (1,): ("NS_YELLOW", (0,))},
        "NS_YELLOW": {(0,): ("ALL_RED", (0,)), (1,): ("ALL_RED", (0,))},
        "ALL_RED": {(0,): ("EW_GREEN", (0,)), (1,): ("EW_GREEN", (1,))},
        "EW_GREEN": {(0,): ("NS_GREEN", (0,)), (1,): ("NS_GREEN", (0,))},
    }
    return StateTable(
        ["NS_GREEN", "NS_YELLOW", "ALL_RED", "EW_GREEN"],
        1,
        1,
        table,
        "NS_GREEN",
        name="traffic",
    )


def machine_suite() -> Tuple[StateTable, ...]:
    """The whole library, for sweeps."""
    return (
        serial_adder(),
        parity_checker(),
        modulo_counter(5),
        debouncer(),
        traffic_light(),
    )
