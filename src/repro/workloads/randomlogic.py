"""Seeded random circuit, function, and machine generators.

The property-based tests and the coverage/cost-factor benches need
populations of networks to sweep: random truth tables (for synthesis and
self-dualization statistics), random multi-level NAND networks (for the
Algorithm 3.1 ↔ oracle agreement properties and minority conversion),
and random Mealy machines (for the sequential transforms).  Everything
is deterministic given the seed.
"""

from __future__ import annotations

import random
from typing import Dict, List, Sequence, Tuple

from ..logic.gates import GateKind
from ..logic.network import Network, NetworkBuilder
from ..logic.truthtable import TruthTable
from ..seq.machine import StateTable, single_input_table


def random_truth_table(
    rng: random.Random, n: int, names: Sequence[str] = ()
) -> TruthTable:
    """A uniformly random n-variable function."""
    return TruthTable(n, rng.getrandbits(1 << n), tuple(names))


def random_self_dual_table(
    rng: random.Random, n: int, names: Sequence[str] = ()
) -> TruthTable:
    """A uniformly random *self-dual* n-variable function: choose the
    low half freely, mirror the complement into the high half."""
    full_mask = (1 << n) - 1
    bits = 0
    for point in range(1 << (n - 1)):
        value = rng.getrandbits(1)
        if value:
            bits |= 1 << point
        if not value:
            bits |= 1 << (point ^ full_mask)
    return TruthTable(n, bits, tuple(names))


def random_nand_network(
    rng: random.Random,
    n_inputs: int,
    n_gates: int,
    n_outputs: int = 1,
    max_fan_in: int = 3,
    name: str = "random_nand",
) -> Network:
    """A random multi-level NAND network (inputs guaranteed used)."""
    inputs = [f"x{i}" for i in range(n_inputs)]
    builder = NetworkBuilder(inputs, name=name)
    available = list(inputs)
    for g in range(n_gates):
        fan_in = rng.randint(1, min(max_fan_in, len(available)))
        sources = rng.sample(available, fan_in)
        line = builder.add(f"g{g}", GateKind.NAND, sources)
        available.append(line)
    outputs = available[-n_outputs:]
    return builder.build(outputs)


def random_mixed_network(
    rng: random.Random,
    n_inputs: int,
    n_gates: int,
    n_outputs: int = 1,
    kinds: Sequence[GateKind] = (
        GateKind.NAND,
        GateKind.NOR,
        GateKind.AND,
        GateKind.OR,
        GateKind.NOT,
        GateKind.XOR,
    ),
    max_fan_in: int = 3,
    name: str = "random_mixed",
) -> Network:
    """A random network over a mixed gate alphabet (XOR included, to
    exercise the conditions that XORs defeat)."""
    inputs = [f"x{i}" for i in range(n_inputs)]
    builder = NetworkBuilder(inputs, name=name)
    available = list(inputs)
    for g in range(n_gates):
        kind = rng.choice(list(kinds))
        if kind is GateKind.NOT:
            sources = [rng.choice(available)]
        else:
            fan_in = rng.randint(2, min(max_fan_in, max(len(available), 2)))
            fan_in = min(fan_in, len(available))
            if fan_in < 1:
                sources = [rng.choice(available)]
            else:
                sources = rng.sample(available, fan_in)
        line = builder.add(f"g{g}", kind, sources)
        available.append(line)
    outputs = available[-n_outputs:]
    return builder.build(outputs)


def random_array_network(
    rng: random.Random,
    stages: int,
    name: str = "random_array",
) -> Network:
    """A random *iterative logic array*: a chain of randomly drawn
    two-input cells, each mixing the running carry with two fresh
    inputs and tapping a per-stage XOR sum output (so internal faults
    stay observable).  The deep reconvergent carry chain makes these
    the random counterpart of the ripple adders — nearly irredundant,
    with expensive per-fault PODEM searches, which is exactly the
    regime where fault dropping pays (cf. the constant-size test sets
    of AND-EXOR iterative arrays in the related work)."""
    kinds = [
        GateKind.AND,
        GateKind.OR,
        GateKind.NAND,
        GateKind.NOR,
        GateKind.XOR,
    ]
    inputs = ["c0"] + [f"{p}{i}" for i in range(stages) for p in "ab"]
    builder = NetworkBuilder(inputs, name=name)
    carry = "c0"
    outputs: List[str] = []
    counter = 0

    def add(kind: GateKind, sources: Sequence[str]) -> str:
        nonlocal counter
        line = builder.add(f"g{counter}", kind, sources)
        counter += 1
        return line

    for stage in range(stages):
        a, b = f"a{stage}", f"b{stage}"
        t1 = add(rng.choice(kinds), [a, b])
        t2 = add(rng.choice(kinds), [t1, carry])
        t3 = add(rng.choice(kinds), [a, carry])
        carry = add(rng.choice(kinds), [t2, t3])
        sum_sources = [t1, carry] if rng.random() < 0.5 else [t2, t3]
        outputs.append(add(GateKind.XOR, sum_sources))
    outputs.append(carry)
    return builder.build(outputs)


def random_alternating_network(
    rng: random.Random,
    n_inputs: int,
    name: str = "random_alt",
    style: str = "and-or",
) -> Network:
    """A random *alternating* (self-dual, two-level) network — always a
    SCAL network by the Yamamoto two-level result, used as the healthy
    population in coverage experiments."""
    from ..logic.synthesis import sop_network

    table = random_self_dual_table(rng, n_inputs)
    return sop_network(
        table,
        names=[f"x{i}" for i in range(n_inputs)],
        style=style,
        network_name=name,
    )


def random_machine(
    rng: random.Random,
    n_states: int,
    name: str = "random_machine",
) -> StateTable:
    """A random single-input/single-output Mealy machine."""
    states = [f"Q{i}" for i in range(n_states)]
    rows: Dict[str, Dict[int, Tuple[str, int]]] = {}
    for state in states:
        rows[state] = {
            x: (rng.choice(states), rng.randint(0, 1)) for x in (0, 1)
        }
    return single_input_table(name, rows, states[0])


def random_input_vectors(
    rng: random.Random, n_inputs: int, length: int
) -> List[Tuple[int, ...]]:
    return [
        tuple(rng.randint(0, 1) for _ in range(n_inputs))
        for _ in range(length)
    ]


def random_sample_points(
    rng: random.Random, n_inputs: int, count: int
) -> List[int]:
    """Distinct truth-table indices for the sampled backend, sorted so
    one seed names one sample set regardless of draw order."""
    space = 1 << n_inputs
    return sorted(rng.sample(range(space), min(count, space)))


def random_fault(rng: random.Random, network: Network, include_pins: bool = True):
    """A uniformly random single stuck-at fault site of ``network``."""
    from ..logic.faults import PinStuckAt, StuckAt

    value = rng.randint(0, 1)
    sites: List[Tuple[str, int]] = [(line, -1) for line in network.lines()]
    if include_pins:
        for gate in network.gates:
            sites.extend((gate.name, pin) for pin in range(len(gate.inputs)))
    line, pin = rng.choice(sites)
    if pin < 0:
        return StuckAt(line, value)
    return PinStuckAt(line, pin, value)
