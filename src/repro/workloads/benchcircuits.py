"""Small named circuits quoted from the thesis's figures.

Kept separate from :mod:`repro.workloads.fig34` (the Section 3.6 worked
example) — these are the one-off illustrations:

* Figure 3.2 — the XOR-on-the-path example showing why non-unate gates
  void Theorem 3.7 (incorrect alternation through an XOR);
* the Section 3.2 Karnaugh-map example (a 4-variable function with an
  internal line g) used for the Theorem 3.2 test-generation walkthrough;
* Figure 6.2a — the contrived four-NAND network that is really a
  3-input minority function.
"""

from __future__ import annotations

from typing import Tuple

from ..logic.gates import GateKind
from ..logic.network import Network, NetworkBuilder
from ..logic.truthtable import TruthTable


def fig32_xor_path_network() -> Network:
    """Figure 3.2's shape: a line g whose path to the output passes
    through an XOR gate, so a stuck g can flip the output in *both*
    periods — the incorrect alternation Theorem 3.7 excludes for unate
    paths.

    Built self-dual so it is a legitimate alternating network:
    ``F = (a·b) ⊕ (a∨b) ⊕ c = a ⊕ b ⊕ c``.  The line ``g = a·b`` does
    *not* alternate (``ā·b̄ ≠ ¬(a·b)``), so ``g`` stuck-at 1 flips the
    output in both periods whenever exactly one of a, b is 1 — the
    figure's undetected incorrect alternation.
    """
    builder = NetworkBuilder(["a", "b", "c"], name="fig3.2")
    g = builder.add("g", GateKind.AND, ["a", "b"])
    h = builder.add("h", GateKind.OR, ["a", "b"])
    builder.add("F", GateKind.XOR, [g, h, "c"])
    return builder.build(["F"])


def section32_example() -> Tuple[Network, str]:
    """The Section 3.2 four-variable test-generation example.

    The thesis's exact Karnaugh maps are OCR-damaged; this reconstruction
    keeps the *setup*: a self-dual four-variable function computed
    through an internal line ``g = x1·x2`` whose Theorem 3.2 analysis is
    non-trivial — both stuck directions are testable with specific
    alternating pairs and no direction is an incorrect alternation.

    The function is the Yamamoto form with x4 as the dualizing variable:
    ``F = x̄4·G ∨ x4·G^d`` with ``G = x1x2 ∨ x̄1x̄2x3`` (chosen so that
    neither gating direction of x̄4 is redundant), which is self-dual by
    construction.  Returns (network, g_line_name).
    """
    builder = NetworkBuilder(["x1", "x2", "x3", "x4"], name="sec3.2")
    n1 = builder.add("x1_n", GateKind.NOT, ["x1"])
    n2 = builder.add("x2_n", GateKind.NOT, ["x2"])
    n4 = builder.add("x4_n", GateKind.NOT, ["x4"])
    g = builder.add("g", GateKind.AND, ["x1", "x2"])
    s = builder.add("s", GateKind.AND, [n1, n2, "x3"])
    p1 = builder.add("p1", GateKind.AND, [g, n4])
    p2 = builder.add("p2", GateKind.AND, [s, n4])
    # G^d = (x1 ∨ x2)(x̄1 ∨ x̄2 ∨ x3), minimal cover x1x̄2 ∨ x̄1x2 ∨ x1x3.
    t1 = builder.add("t1", GateKind.AND, ["x1", n2, "x4"])
    t2 = builder.add("t2", GateKind.AND, [n1, "x2", "x4"])
    t3 = builder.add("t3", GateKind.AND, ["x1", "x3", "x4"])
    builder.add("F", GateKind.OR, [p1, p2, t1, t2, t3])
    return builder.build(["F"]), "g"


def fig62_nand_network() -> Network:
    """Figure 6.2a: the four-NAND realization of the 3-input minority
    function (NANDs of pairs, ANDed): really one minority module."""
    builder = NetworkBuilder(["A", "B", "C"], name="fig6.2a")
    m1 = builder.add("m1", GateKind.NAND, ["A", "B"])
    m2 = builder.add("m2", GateKind.NAND, ["A", "C"])
    m3 = builder.add("m3", GateKind.NAND, ["B", "C"])
    # AND of the three NANDs = "fewer than two inputs high" = minority.
    n = builder.add("n", GateKind.NAND, [m1, m2, m3])
    builder.add("f", GateKind.NAND, [n])
    return builder.build(["f"])


def minority3_table() -> TruthTable:
    """The 3-input minority function (Figure 6.1a truth table)."""
    return TruthTable.from_function(
        lambda a, b, c: int(a + b + c < 1.5), 3, ("A", "B", "C")
    )
