"""Reusable Hypothesis strategies for SCAL property testing.

The repository's property tests quantify over truth tables, self-dual
tables, netlists, and machines; these strategies make those populations
first-class so downstream users can property-test their own SCAL
constructions:

    from hypothesis import given
    from repro.workloads.strategies import alternating_networks

    @given(alternating_networks(max_inputs=3))
    def test_my_invariant(net):
        ...

Everything here is deterministic under Hypothesis's seeds (no ambient
randomness).
"""

from __future__ import annotations


from hypothesis import strategies as st

from ..logic.gates import GateKind
from ..logic.network import Network, NetworkBuilder
from ..logic.truthtable import TruthTable
from ..seq.machine import StateTable, single_input_table


def truth_tables(
    min_inputs: int = 1, max_inputs: int = 4
) -> st.SearchStrategy[TruthTable]:
    """Uniformly random boolean functions."""
    return st.integers(min_inputs, max_inputs).flatmap(
        lambda n: st.builds(
            TruthTable,
            st.just(n),
            st.integers(min_value=0, max_value=(1 << (1 << n)) - 1),
        )
    )


def self_dual_tables(
    min_inputs: int = 1, max_inputs: int = 4
) -> st.SearchStrategy[TruthTable]:
    """Uniformly random *self-dual* functions: the low half of the table
    is free, the high half is its complemented mirror."""

    def build(n: int, low_bits: int) -> TruthTable:
        full_mask = (1 << n) - 1
        bits = 0
        for point in range(1 << (n - 1)):
            value = (low_bits >> point) & 1
            if value:
                bits |= 1 << point
            else:
                bits |= 1 << (point ^ full_mask)
        return TruthTable(n, bits)

    return st.integers(min_inputs, max_inputs).flatmap(
        lambda n: st.builds(
            build,
            st.just(n),
            st.integers(min_value=0, max_value=(1 << (1 << (n - 1))) - 1),
        )
    )


def networks(
    min_inputs: int = 2,
    max_inputs: int = 4,
    max_gates: int = 8,
    kinds: tuple = (
        GateKind.NAND,
        GateKind.NOR,
        GateKind.AND,
        GateKind.OR,
        GateKind.NOT,
        GateKind.XOR,
    ),
) -> st.SearchStrategy[Network]:
    """Random acyclic multi-level networks (single output)."""

    def build(n_inputs: int, plan: list) -> Network:
        builder = NetworkBuilder(
            [f"x{i}" for i in range(n_inputs)], name="hyp_net"
        )
        available = [f"x{i}" for i in range(n_inputs)]
        for g, (kind_index, picks) in enumerate(plan):
            kind = kinds[kind_index % len(kinds)]
            if kind is GateKind.NOT:
                sources = [available[picks[0] % len(available)]]
            else:
                count = max(2, min(3, len(picks)))
                sources = []
                for p in picks[:count]:
                    candidate = available[p % len(available)]
                    if candidate not in sources:
                        sources.append(candidate)
                if len(sources) < 2:
                    sources.append(available[0])
            line = builder.add(f"g{g}", kind, sources)
            available.append(line)
        return builder.build([available[-1]])

    plan_entry = st.tuples(
        st.integers(min_value=0, max_value=len(kinds) - 1),
        st.lists(st.integers(min_value=0, max_value=63), min_size=1, max_size=3),
    )
    return st.integers(min_inputs, max_inputs).flatmap(
        lambda n: st.builds(
            build,
            st.just(n),
            st.lists(plan_entry, min_size=1, max_size=max_gates),
        )
    )


def alternating_networks(
    min_inputs: int = 2, max_inputs: int = 3, style: str = "and-or"
) -> st.SearchStrategy[Network]:
    """Random two-level *SCAL* networks (self-dual by construction,
    self-checking by the Yamamoto two-level result)."""
    from ..logic.synthesis import sop_network

    return self_dual_tables(min_inputs, max_inputs).map(
        lambda table: sop_network(
            table,
            names=[f"x{i}" for i in range(table.n)],
            style=style,
            network_name="hyp_alt",
        )
    )


def machines(
    min_states: int = 2, max_states: int = 5
) -> st.SearchStrategy[StateTable]:
    """Random single-input/single-output Mealy machines."""

    def build(n_states: int, choices: list) -> StateTable:
        states = [f"Q{i}" for i in range(n_states)]
        rows = {}
        index = 0
        for state in states:
            row = {}
            for x in (0, 1):
                nxt, out = choices[index % len(choices)]
                row[x] = (states[nxt % n_states], out)
                index += 1
            rows[state] = row
        return single_input_table("hyp_machine", rows, states[0])

    choice = st.tuples(
        st.integers(min_value=0, max_value=15),
        st.integers(min_value=0, max_value=1),
    )
    return st.integers(min_states, max_states).flatmap(
        lambda n: st.builds(
            build,
            st.just(n),
            st.lists(choice, min_size=2 * n, max_size=2 * n),
        )
    )
