"""The 0101 sequence detector in its three thesis realizations
(Section 4.5, Figures 4.8–4.10, Table 4.1).

Kohavi's example machine — the comparison workload Reynolds and the
thesis both reuse — detects overlapping occurrences of the serial input
pattern 0101 (Mealy output: z = 1 on the final 1).  The three builds:

* :func:`kohavi_0101` / :func:`kohavi_circuit` — the plain machine
  (Figure 4.8; thesis cost row: 2 flip-flops, 12 gates),
* :func:`reynolds_0101` — Reynolds' dual flip-flop SCAL version
  (Figure 4.9; thesis: 4 flip-flops, 19 gates),
* :func:`translator_0101` — the code-conversion version
  (Figure 4.10; thesis: 3 flip-flops, 23 gates).

Our gate counts come from our own Quine–McCluskey synthesis, so they
differ in absolute value from the thesis's hand counts; Table 4.1's
*shape* (translator saves flip-flops over dual-FF at comparable gate
cost) is what the E-TAB4.1 bench checks.
"""

from __future__ import annotations

from typing import Dict, List, Optional, Tuple

from ..scal.codeconv import CodeConversionMachine, to_code_conversion
from ..scal.dualff import DualFlipFlopMachine, to_dual_flipflop
from ..seq.encoding import StateEncoding
from ..seq.machine import StateTable, single_input_table
from ..seq.synthesis import SynthesizedMachine, synthesize_machine

#: Thesis Table 4.1 (flip-flops, gates) for the three realizations.
THESIS_COSTS: Dict[str, Tuple[int, int]] = {
    "kohavi": (2, 12),
    "reynolds": (4, 19),
    "translator": (3, 23),
}


def kohavi_0101() -> StateTable:
    """The overlapping 0101 detector state table (four states).

    S0: no useful prefix seen; S1: trailing 0; S2: trailing 01;
    S3: trailing 010.  From S3 an input 1 completes 0101 (z = 1) and
    leaves the machine holding the overlap-capable suffix 01 (→ S2).
    """
    rows = {
        "S0": {0: ("S1", 0), 1: ("S0", 0)},
        "S1": {0: ("S1", 0), 1: ("S2", 0)},
        "S2": {0: ("S3", 0), 1: ("S0", 0)},
        "S3": {0: ("S1", 0), 1: ("S2", 1)},
    }
    return single_input_table("seq0101", rows, "S0")


def kohavi_circuit(
    encoding: Optional[StateEncoding] = None,
) -> SynthesizedMachine:
    """The plain gate-level machine (Figure 4.8)."""
    machine = kohavi_0101()
    return synthesize_machine(machine, encoding)


def reynolds_0101(
    encoding: Optional[StateEncoding] = None,
) -> DualFlipFlopMachine:
    """Reynolds' SCAL 0101 detector (Figure 4.9)."""
    return to_dual_flipflop(kohavi_0101(), encoding)


def translator_0101(
    encoding: Optional[StateEncoding] = None,
) -> CodeConversionMachine:
    """The translator implementation (Figure 4.10)."""
    return to_code_conversion(kohavi_0101(), encoding)


def reference_outputs(bits: List[int]) -> List[int]:
    """Golden z stream for a serial input bit list."""
    machine = kohavi_0101()
    return [z for (z,) in machine.run([(b,) for b in bits])]


def pattern_positions(bits: List[int]) -> List[int]:
    """Indices where an (overlapping) 0101 ends — a second golden model
    used by the tests to validate the state table itself."""
    positions = []
    for i in range(3, len(bits)):
        if bits[i - 3 : i + 1] == [0, 1, 0, 1]:
            positions.append(i)
    return positions
