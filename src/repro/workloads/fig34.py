"""Reconstruction of the thesis's Figure 3.4 example network (Section 3.6).

The figure's drawing is unrecoverable from the scanned text, but its
behaviour is fully pinned down by the surrounding prose and by the
Figure 3.6 normal-output rows, which give the three output functions:

    F1 = Ā·B ∨ Ā·C ∨ B·C   (= MAJ(Ā, B, C))
    F2 = A ⊕ B ⊕ C
    F3 = MAJ(A, B, C) = A·B ∨ B·C ∨ A·C

and the key line-level facts:

* line 9 — a ``NAND(A, B)`` shared between the F2 and F3 subnetworks.
  Its stuck-at-0 turns F2 into the self-dual function ``C``: an
  *incorrect alternating* output on F2 (starred in Figure 3.6 at the two
  pairs where A⊕B = 1), while F3 collapses to constant 1 and is
  nonalternating on every pair — so the fault is detected and the
  multi-output Corollary 3.2 admits the line.  Our ``nab`` line
  reproduces the thesis's ``9 s/0`` table rows for F2 and F3 exactly.
* line 20 — an intermediate used only inside F2's subnetwork that fans
  out with unequal path parity; its stuck-at-0 also produces an
  incorrect alternating F2, but with no other output to catch it the
  network is **not self-checking**.  Our ``or_ab`` line (= A∨B feeding
  both the (A⊕B)·C̄ product and, complemented, the Ā·B̄·C product)
  plays that role: s-a-0 again collapses F2 to ``C``.
* Figure 3.7's fix — feed the offending gate's inputs "into a separate
  NAND gate so that line 20 no longer fans out", i.e. duplicate the
  gate.  :func:`fig37_fixed_network` duplicates ``or_ab`` into two
  single-fanout copies, after which every line passes Algorithm 3.1 and
  the network is fully self-checking.

The netlist (all NAND/NOT, as in the thesis's figure):

    An = NOT A          Bn = NOT B          Cn = NOT C
    nab  = NAND(A, B)                       -- thesis line 9
    nbc  = NAND(B, C)       nac = NAND(A, C)
    F3   = NAND(nab, nbc, nac)
    n1b  = NAND(An, B)      n1c = NAND(An, C)
    F1   = NAND(n1b, n1c, nbc)
    or_ab  = NAND(An, Bn)   (= A ∨ B)       -- thesis line 20
    nor_ab = NOT(or_ab)     (= Ā·B̄)
    nab_n  = NOT(nab)       (= A·B)
    g1 = NAND(nab, Cn, or_ab)   -- (A⊕B)·C̄ product
    g2 = NAND(nab_n, C)         -- A·B·C product
    g3 = NAND(nor_ab, C)        -- Ā·B̄·C product
    F2 = NAND(g1, g2, g3)
"""

from __future__ import annotations

from typing import Dict, Tuple

from ..logic.gates import GateKind
from ..logic.network import Network, NetworkBuilder

#: Map from the thesis's line numbers to this reconstruction's line names.
THESIS_LINE_MAP: Dict[str, str] = {
    "9": "nab",
    "20": "or_ab",
}

#: Input pair labels in Figure 3.6's column order (ABC notation).
FIG36_PAIR_LABELS: Tuple[str, ...] = (
    "(000,111)",
    "(001,110)",
    "(010,101)",
    "(011,100)",
)


def _common_prefix(builder: NetworkBuilder) -> None:
    builder.add("An", GateKind.NOT, ["A"])
    builder.add("Bn", GateKind.NOT, ["B"])
    builder.add("Cn", GateKind.NOT, ["C"])
    builder.add("nab", GateKind.NAND, ["A", "B"])
    builder.add("nbc", GateKind.NAND, ["B", "C"])
    builder.add("nac", GateKind.NAND, ["A", "C"])
    builder.add("F3", GateKind.NAND, ["nab", "nbc", "nac"])
    builder.add("n1b", GateKind.NAND, ["An", "B"])
    builder.add("n1c", GateKind.NAND, ["An", "C"])
    builder.add("F1", GateKind.NAND, ["n1b", "n1c", "nbc"])
    builder.add("nab_n", GateKind.NOT, ["nab"])


def fig34_network() -> Network:
    """The Figure 3.4 reconstruction — **not** self-checking (line
    ``or_ab``, the thesis's line 20, fails for stuck-at 0)."""
    builder = NetworkBuilder(["A", "B", "C"], name="fig3.4")
    _common_prefix(builder)
    builder.add("or_ab", GateKind.NAND, ["An", "Bn"])
    builder.add("nor_ab", GateKind.NOT, ["or_ab"])
    builder.add("g1", GateKind.NAND, ["nab", "Cn", "or_ab"])
    builder.add("g2", GateKind.NAND, ["nab_n", "C"])
    builder.add("g3", GateKind.NAND, ["nor_ab", "C"])
    builder.add("F2", GateKind.NAND, ["g1", "g2", "g3"])
    return builder.build(["F1", "F2", "F3"])


def fig37_fixed_network() -> Network:
    """The Figure 3.7 fix: duplicate the ``or_ab`` gate so the line no
    longer fans out (one extra NAND, as in the thesis).  Self-checking."""
    builder = NetworkBuilder(["A", "B", "C"], name="fig3.7")
    _common_prefix(builder)
    builder.add("or_ab", GateKind.NAND, ["An", "Bn"])
    builder.add("or_ab2", GateKind.NAND, ["An", "Bn"])  # the added gate
    builder.add("nor_ab", GateKind.NOT, ["or_ab2"])
    builder.add("g1", GateKind.NAND, ["nab", "Cn", "or_ab"])
    builder.add("g2", GateKind.NAND, ["nab_n", "C"])
    builder.add("g3", GateKind.NAND, ["nor_ab", "C"])
    builder.add("F2", GateKind.NAND, ["g1", "g2", "g3"])
    return builder.build(["F1", "F2", "F3"])


def expected_output_functions() -> Dict[str, str]:
    """The three output functions as quoted from Section 3.6 (expression
    syntax of :mod:`repro.logic.parse`)."""
    return {
        "F1": "A' B | A' C | B C",
        "F2": "A ^ B ^ C",
        "F3": "A B | B C | A C",
    }
