"""Workloads: the thesis's worked examples and random populations."""

from .benchcircuits import (
    fig32_xor_path_network,
    fig62_nand_network,
    minority3_table,
    section32_example,
)
from .detectors import (
    THESIS_COSTS,
    kohavi_0101,
    kohavi_circuit,
    pattern_positions,
    reference_outputs,
    reynolds_0101,
    translator_0101,
)
from .fig34 import (
    FIG36_PAIR_LABELS,
    THESIS_LINE_MAP,
    expected_output_functions,
    fig34_network,
    fig37_fixed_network,
)
from .machines import (
    debouncer,
    machine_suite,
    modulo_counter,
    parity_checker,
    serial_adder,
    traffic_light,
)
from .randomlogic import (
    random_alternating_network,
    random_input_vectors,
    random_machine,
    random_mixed_network,
    random_nand_network,
    random_self_dual_table,
    random_truth_table,
)

__all__ = [
    "FIG36_PAIR_LABELS",
    "THESIS_COSTS",
    "THESIS_LINE_MAP",
    "expected_output_functions",
    "fig32_xor_path_network",
    "fig34_network",
    "fig37_fixed_network",
    "fig62_nand_network",
    "kohavi_0101",
    "kohavi_circuit",
    "machine_suite",
    "modulo_counter",
    "parity_checker",
    "debouncer",
    "minority3_table",
    "serial_adder",
    "traffic_light",
    "pattern_positions",
    "random_alternating_network",
    "random_input_vectors",
    "random_machine",
    "random_mixed_network",
    "random_nand_network",
    "random_self_dual_table",
    "random_truth_table",
    "reference_outputs",
    "reynolds_0101",
    "section32_example",
    "translator_0101",
]
