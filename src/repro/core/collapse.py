"""Fault collapsing: equivalence and dominance reduction of fault lists.

The thesis's Section 3.6 walkthrough starts by collapsing "equivalent
pairs of lines" before analyzing anything; this module implements the
full classical structural collapsing the walkthrough gestures at:

* **equivalence** — faults indistinguishable at the gate boundary fold
  together: for an AND gate, any input s-a-0 ≡ output s-a-0 (NAND:
  input s-a-0 ≡ output s-a-1, and dually for OR/NOR); a NOT/BUF input
  fault ≡ the corresponding output fault;
* **dominance** — for an AND gate, the output s-a-1 dominates each input
  s-a-1 (any test for the input fault also tests the output fault), so
  the dominating fault can be dropped from a *detection* fault list.

The result is a representative fault set that preserves single-fault
coverage, verified against truth tables in the test suite.  Collapsing
matters doubly for SCAL: every fault the oracle or PODEM must process is
two exhaustive network evaluations.
"""

from __future__ import annotations

import dataclasses
from typing import Dict, List, Set, Tuple

from ..logic.faults import Fault, PinStuckAt, StuckAt
from ..logic.gates import GateKind
from ..logic.network import Network

#: For each collapsible kind: (controlling input value, forced output).
_CONTROLLING = {
    GateKind.AND: (0, 0),
    GateKind.NAND: (0, 1),
    GateKind.OR: (1, 1),
    GateKind.NOR: (1, 0),
}


def _key(fault: Fault) -> Tuple:
    if isinstance(fault, StuckAt):
        return ("stem", fault.line, fault.value)
    return ("pin", fault.gate, fault.pin_index, fault.value)


class _UnionFind:
    def __init__(self) -> None:
        self.parent: Dict[Tuple, Tuple] = {}

    def find(self, x: Tuple) -> Tuple:
        self.parent.setdefault(x, x)
        while self.parent[x] != x:
            self.parent[x] = self.parent[self.parent[x]]
            x = self.parent[x]
        return x

    def union(self, a: Tuple, b: Tuple) -> None:
        ra, rb = self.find(a), self.find(b)
        if ra != rb:
            self.parent[ra] = rb


@dataclasses.dataclass(frozen=True)
class CollapseReport:
    """Outcome of structural fault collapsing."""

    representatives: Tuple[Fault, ...]
    total: int
    equivalence_classes: int
    dominated_dropped: int

    @property
    def collapse_ratio(self) -> float:
        return len(self.representatives) / self.total if self.total else 1.0


def equivalence_collapse(network: Network) -> Dict[Tuple, List[Fault]]:
    """Group the stem+pin single-fault universe into equivalence classes.

    Rules: for a gate with controlling value c and forced output f —
    every input pin s-a-c ≡ the output stem s-a-f; NOT: pin s-a-v ≡
    stem s-a-v̄; BUF: pin s-a-v ≡ stem s-a-v.  Additionally a pin fault
    on the single branch of a non-fanout stem ≡ the stem fault.
    """
    uf = _UnionFind()
    faults: Dict[Tuple, Fault] = {}

    def register(fault: Fault) -> Tuple:
        key = _key(fault)
        faults.setdefault(key, fault)
        uf.find(key)
        return key

    for line in network.lines():
        for value in (0, 1):
            register(StuckAt(line, value))
    for gate in network.gates:
        for pin, src in enumerate(gate.inputs):
            for value in (0, 1):
                pkey = register(PinStuckAt(gate.name, pin, value))
                # Non-fanout branch == stem.
                if network.fanout_count(src) == 1 and src not in network.outputs:
                    uf.union(pkey, _key(StuckAt(src, value)))
        kind = gate.kind
        if kind in _CONTROLLING:
            c, f = _CONTROLLING[kind]
            out_key = _key(StuckAt(gate.name, f))
            for pin in range(len(gate.inputs)):
                uf.union(_key(PinStuckAt(gate.name, pin, c)), out_key)
        elif kind in (GateKind.NOT, GateKind.BUF):
            invert = kind is GateKind.NOT
            for value in (0, 1):
                out_value = (1 - value) if invert else value
                uf.union(
                    _key(PinStuckAt(gate.name, 0, value)),
                    _key(StuckAt(gate.name, out_value)),
                )

    classes: Dict[Tuple, List[Fault]] = {}
    for key, fault in faults.items():
        classes.setdefault(uf.find(key), []).append(fault)
    return classes


def _dominated_keys(network: Network) -> Set[Tuple]:
    """Output stem faults dominated by an input pin fault.

    For AND (controlling 0 / forced 0): the output s-a-1 is detected by
    any test for any input s-a-1 (non-controlling), so with all pin
    faults kept the output s-a-1 may be dropped; dually for the other
    standard gates.  NOT/BUF outputs are already equivalent, not merely
    dominated.
    """
    dropped: Set[Tuple] = set()
    for gate in network.gates:
        kind = gate.kind
        if kind not in _CONTROLLING or len(gate.inputs) < 2:
            continue
        c, f = _CONTROLLING[kind]
        dropped.add(_key(StuckAt(gate.name, 1 - f)))
    return dropped


def collapse_stem_faults(
    network: Network, include_inputs: bool = True
) -> List[StuckAt]:
    """One representative stem fault per equivalence class of the stem
    universe — the default fault list for sequential campaigns.

    Equivalent faults produce identical faulty functions at every
    evaluation (the gate-boundary identities above hold pointwise), so
    replacing a class by one member preserves campaign verdicts — for
    clocked runs too — while skipping the duplicate simulations.
    ``include_inputs=False`` drops primary-input stems, matching
    :func:`repro.logic.faults.enumerate_stem_faults`.
    """
    representatives: List[StuckAt] = []
    for members in equivalence_collapse(network).values():
        stems = [
            m
            for m in members
            if isinstance(m, StuckAt)
            and (include_inputs or not network.is_input(m.line))
        ]
        if stems:
            representatives.append(stems[0])
    return representatives


def collapsed_single_faults(
    network: Network,
    include_inputs: bool = True,
    include_pins: bool = True,
) -> List[Fault]:
    """Collapsed representatives of the live single stem+pin universe.

    The equivalence-only reduction of :func:`collapse_faults` (dominance
    stays opt-in there), filtered to lines that reach some output — the
    same liveness rule as ``ScalSimulator.single_fault_universe``.
    """
    if not include_pins:
        reps: List[Fault] = list(
            collapse_stem_faults(network, include_inputs=include_inputs)
        )
    else:
        reps = []
        for members in equivalence_collapse(network).values():
            kept = [
                m
                for m in members
                if isinstance(m, PinStuckAt)
                or include_inputs
                or not network.is_input(m.line)
            ]
            if not kept:
                continue
            stems = [m for m in kept if isinstance(m, StuckAt)]
            reps.append(stems[0] if stems else kept[0])
    live = set()
    for out in network.outputs:
        live |= network.cone(out)
    kept_faults: List[Fault] = []
    for fault in reps:
        line = fault.line if isinstance(fault, StuckAt) else fault.gate
        if line in live:
            kept_faults.append(fault)
    return kept_faults


def collapse_faults(
    network: Network, use_dominance: bool = False
) -> CollapseReport:
    """The representative single-fault list after collapsing.

    Representatives prefer stem faults (they match the thesis's per-line
    phrasing).  ``use_dominance`` additionally drops the dominated
    output faults of multi-input standard gates — sound only for
    *detection* fault lists over **irredundant** networks (if an input
    s-a-noncontrolling fault is itself untestable, the dominated output
    fault would lose its cover), which is why it is opt-in.
    """
    classes = equivalence_collapse(network)
    dominated = _dominated_keys(network) if use_dominance else set()
    representatives: List[Fault] = []
    dropped = 0
    total = sum(len(members) for members in classes.values())
    for root, members in classes.items():
        keys = {_key(m) for m in members}
        if use_dominance and any(k in dominated for k in keys):
            # The whole class shares one detection behaviour; if any
            # member is a dominated output fault, every test for the
            # kept input faults of that gate detects the class.  (As in
            # classical collapsing this presumes the kept input faults
            # are testable, i.e. an irredundant network.)
            dropped += 1
            continue
        stems = [m for m in members if isinstance(m, StuckAt)]
        representatives.append(stems[0] if stems else members[0])
    return CollapseReport(
        representatives=tuple(representatives),
        total=total,
        equivalence_classes=len(classes),
        dominated_dropped=dropped,
    )
