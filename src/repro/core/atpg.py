"""Structural test generation (PODEM) for stuck-at faults.

The truth-table machinery of :mod:`repro.core.testgen` is exact but
exponential in the input count.  For wider networks this module provides
the classical structural alternative: **PODEM** (path-oriented decision
making) over five-valued logic — every line carries a (good, faulty)
value pair from {0, 1, X}, a *D* being (1, 0) and a *D̄* being (0, 1).

The search is **guided** rather than first-come: a one-pass SCOAP-style
testability analysis (0/1-controllability per line, observability per
line) is computed once per network, the D-frontier gate closest to an
output (lowest observability) is propagated first, and backtrace picks
the *easiest* input when any input suffices for the objective value but
the *hardest* when all inputs are needed (fail fast).  A dynamic X-path
check prunes branches whose fault effect can no longer reach any output
through still-undecided lines — sound because ternary simulation is
monotone: a concrete composite value never changes as X's are refined.

:meth:`Podem.generate_test_ex` distinguishes the three search outcomes
(``test`` / ``redundant`` / ``aborted``) and accepts a wall-clock
deadline, which is what the fault-dropping campaign driver in
:mod:`repro.engine.atpg` builds on; :meth:`Podem.generate_test` keeps
the legacy ``assignment | None`` surface.

On top of the classic single-vector test, :func:`generate_alternating_test`
produces SCAL test *pairs*: a vector X such that the fault flips the
output at X but not at X̄ — then the pair (X, X̄) yields a nonalternating
output, which is what the alternating checker can see.  (A vector that
flips the output in *both* periods is precisely the incorrect
alternation of Theorem 3.1 and useless as a test.)

Validated against the exhaustive truth-table generator on every small
network in the test suite.
"""

from __future__ import annotations

import dataclasses
import time
from typing import Dict, List, Optional, Sequence, Tuple

from ..logic.faults import Fault, PinStuckAt, StuckAt
from ..logic.gates import DOMINANT_VALUE, GateKind
from ..logic.network import Network

X = None  # the unknown value in three-valued simulation

Value = Optional[int]
Composite = Tuple[Value, Value]  # (good circuit, faulty circuit)

#: Cost ceiling for the SCOAP-style measures (uncontrollable /
#: unobservable lines saturate here instead of overflowing).
UNREACHABLE_COST = 1 << 20


def _eval3(kind: GateKind, values: Sequence[Value]) -> Value:
    """Three-valued gate evaluation (X = unknown)."""
    if kind is GateKind.CONST0:
        return 0
    if kind is GateKind.CONST1:
        return 1
    if kind is GateKind.BUF:
        return values[0]
    if kind is GateKind.NOT:
        return None if values[0] is X else 1 - values[0]
    if kind in (GateKind.AND, GateKind.NAND):
        if any(v == 0 for v in values):
            out = 0
        elif any(v is X for v in values):
            return X
        else:
            out = 1
        return out if kind is GateKind.AND else 1 - out
    if kind in (GateKind.OR, GateKind.NOR):
        if any(v == 1 for v in values):
            out = 1
        elif any(v is X for v in values):
            return X
        else:
            out = 0
        return out if kind is GateKind.OR else 1 - out
    if kind in (GateKind.XOR, GateKind.XNOR):
        if any(v is X for v in values):
            return X
        out = sum(values) % 2
        return out if kind is GateKind.XOR else 1 - out
    if kind in (GateKind.MAJ, GateKind.MIN):
        ones = sum(1 for v in values if v == 1)
        zeros = sum(1 for v in values if v == 0)
        n = len(values)
        # Enough ones / zeros to decide regardless of the X inputs?
        if 2 * ones > n:
            out = 1
        elif 2 * (n - zeros) < n:
            out = 0
        else:
            return X
        return out if kind is GateKind.MAJ else 1 - out
    raise ValueError(f"unsupported gate kind {kind}")


@dataclasses.dataclass
class _State:
    """Composite line values during one PODEM search."""

    values: Dict[str, Composite]

    def good(self, line: str) -> Value:
        return self.values[line][0]

    def faulty(self, line: str) -> Value:
        return self.values[line][1]


@dataclasses.dataclass(frozen=True)
class PodemResult:
    """Outcome of one budgeted PODEM search.

    ``status`` is ``"test"`` (``test`` holds a full detecting input
    assignment, ``assignment`` just the decided primary inputs — the
    free ones are completion candidates), ``"redundant"`` (the decision
    tree was exhausted: no single-vector test exists), or ``"aborted"``
    (backtrack budget or deadline hit — testability undecided).
    """

    status: str
    test: Optional[Dict[str, int]] = None
    assignment: Optional[Dict[str, int]] = None
    backtracks: int = 0


class Podem:
    """PODEM test generator for one combinational network."""

    def __init__(self, network: Network, max_backtracks: int = 2000) -> None:
        self.network = network
        self.max_backtracks = max_backtracks
        self._topo = list(network.gates)
        # Lines whose value can reach some output — fixed for the network,
        # so computed once instead of per D-frontier check.
        reachable = set()
        for out in network.outputs:
            reachable |= network.cone(out)
        self._reachable = frozenset(reachable)
        self._cc = self._controllability()
        self._co = self._observability()

    # ------------------------------------------------------------------
    # SCOAP-style testability measures (one pass per network)
    # ------------------------------------------------------------------
    def _controllability(self) -> Dict[str, Tuple[int, int]]:
        """(cost of forcing 0, cost of forcing 1) per line; primary
        inputs cost 1, each gate adds 1 plus its inputs' costs."""
        cap = UNREACHABLE_COST
        cc: Dict[str, Tuple[int, int]] = {
            name: (1, 1) for name in self.network.inputs
        }
        for gate in self._topo:
            ins = [cc[src] for src in gate.inputs]
            kind = gate.kind
            if kind is GateKind.CONST0:
                pair = (1, cap)
            elif kind is GateKind.CONST1:
                pair = (cap, 1)
            elif kind is GateKind.BUF:
                pair = (ins[0][0] + 1, ins[0][1] + 1)
            elif kind is GateKind.NOT:
                pair = (ins[0][1] + 1, ins[0][0] + 1)
            elif kind in (GateKind.AND, GateKind.NAND):
                hi = sum(c1 for _c0, c1 in ins) + 1  # all inputs 1
                lo = min(c0 for c0, _c1 in ins) + 1  # any input 0
                pair = (lo, hi) if kind is GateKind.AND else (hi, lo)
            elif kind in (GateKind.OR, GateKind.NOR):
                lo = sum(c0 for c0, _c1 in ins) + 1
                hi = min(c1 for _c0, c1 in ins) + 1
                pair = (lo, hi) if kind is GateKind.OR else (hi, lo)
            elif kind in (GateKind.XOR, GateKind.XNOR):
                even, odd = 0, cap  # parity DP over the fan-in
                for c0, c1 in ins:
                    even, odd = (
                        min(even + c0, odd + c1),
                        min(even + c1, odd + c0),
                    )
                pair = (
                    (even + 1, odd + 1)
                    if kind is GateKind.XOR
                    else (odd + 1, even + 1)
                )
            elif kind in (GateKind.MAJ, GateKind.MIN):
                need = len(ins) // 2 + 1  # votes to decide either way
                hi = sum(sorted(c1 for _c0, c1 in ins)[:need]) + 1
                lo = sum(sorted(c0 for c0, _c1 in ins)[:need]) + 1
                pair = (lo, hi) if kind is GateKind.MAJ else (hi, lo)
            else:  # pragma: no cover - exhaustive over GateKind
                pair = (1, 1)
            cc[gate.name] = (min(pair[0], cap), min(pair[1], cap))
        return cc

    def _observability(self) -> Dict[str, int]:
        """Cost of propagating a value difference from each line to some
        primary output (0 at the outputs themselves)."""
        cap = UNREACHABLE_COST
        co: Dict[str, int] = {name: cap for name in self._cc}
        for out in self.network.outputs:
            co[out] = 0
        for gate in reversed(self._topo):
            out_co = co.get(gate.name, cap)
            kind = gate.kind
            for pin, src in enumerate(gate.inputs):
                others = [
                    s for j, s in enumerate(gate.inputs) if j != pin
                ]
                if kind in (GateKind.AND, GateKind.NAND):
                    extra = sum(self._cc[o][1] for o in others)
                elif kind in (GateKind.OR, GateKind.NOR):
                    extra = sum(self._cc[o][0] for o in others)
                elif kind in (GateKind.NOT, GateKind.BUF):
                    extra = 0
                else:  # XOR/XNOR/MAJ/MIN: side inputs pinned either way
                    extra = sum(min(self._cc[o]) for o in others)
                cand = min(out_co + extra + 1, cap)
                if cand < co.get(src, cap):
                    co[src] = cand
        return co

    # ------------------------------------------------------------------
    # simulation
    # ------------------------------------------------------------------
    def _simulate(
        self, assignment: Dict[str, Value], fault: Fault
    ) -> _State:
        values: Dict[str, Composite] = {}
        f_line = fault.line if isinstance(fault, StuckAt) else None
        for name in self.network.inputs:
            good = assignment.get(name, X)
            faulty = good
            if f_line == name:
                faulty = fault.value
            values[name] = (good, faulty)
        for gate in self._topo:
            good_in = [values[src][0] for src in gate.inputs]
            faulty_in = [values[src][1] for src in gate.inputs]
            if isinstance(fault, PinStuckAt) and fault.gate == gate.name:
                faulty_in[fault.pin_index] = fault.value
            good = _eval3(gate.kind, good_in)
            faulty = _eval3(gate.kind, faulty_in)
            if f_line == gate.name:
                faulty = fault.value
            values[gate.name] = (good, faulty)
        return _State(values)

    def _detected(self, state: _State) -> bool:
        return any(
            state.good(out) is not X
            and state.faulty(out) is not X
            and state.good(out) != state.faulty(out)
            for out in self.network.outputs
        )

    def _possible(self, state: _State, fault: Fault) -> bool:
        """Could this partial assignment still lead to detection?"""
        site_good, site_faulty = self._site_values(state, fault)
        if site_good is not X and site_faulty is not X and site_good == site_faulty:
            return False  # fault not activated and can no longer be
        # Open lines: an undecided composite value or a live fault effect.
        # Ternary simulation is monotone (a concrete composite value never
        # changes as X's refine), so a detecting refinement can only flip
        # outputs that are open now, through lines that are open now.
        frontier = {
            line
            for line, (g, f) in state.values.items()
            if (g is X or f is X or g != f)
        }
        if not frontier:
            return False
        # Dynamic X-path check: walk backwards from the open outputs
        # through open lines; the fault site must still be on such a path.
        live = {out for out in self.network.outputs if out in frontier}
        if not live:
            return False
        for gate in reversed(self._topo):
            if gate.name in live:
                for src in gate.inputs:
                    if src in frontier:
                        live.add(src)
        site_line = (
            fault.line if isinstance(fault, StuckAt) else fault.gate
        )
        return site_line in live

    def _site_values(self, state: _State, fault: Fault) -> Composite:
        if isinstance(fault, StuckAt):
            return state.values[fault.line]
        gate = self.network.gate(fault.gate)
        src = gate.inputs[fault.pin_index]
        good = state.values[src][0]
        return good, fault.value

    # ------------------------------------------------------------------
    # objective and backtrace
    # ------------------------------------------------------------------
    def _objective(self, state: _State, fault: Fault) -> Optional[Tuple[str, int]]:
        site_good, _ = self._site_values(state, fault)
        stuck = fault.value
        site_line = (
            fault.line
            if isinstance(fault, StuckAt)
            else self.network.gate(fault.gate).inputs[fault.pin_index]
        )
        if site_good is X:
            return (site_line, 1 - stuck)  # activate the fault
        # Propagate: among the D-frontier gates (output still open, some
        # input carrying a definite fault effect, some input still X),
        # drive the one closest to an output — lowest observability —
        # and feed it its cheapest non-controlling side input.
        best: Optional[Tuple[int, "object", List[str]]] = None
        for gate in self._topo:
            out_g, out_f = state.values[gate.name]
            if out_g is not X and out_f is not X:
                continue
            has_effect = any(
                state.values[src][0] is not X
                and state.values[src][1] is not X
                and state.values[src][0] != state.values[src][1]
                for src in gate.inputs
            )
            if not has_effect:
                continue
            x_inputs = [
                src for src in gate.inputs if state.values[src][0] is X
            ]
            if not x_inputs:
                continue
            rank = self._co.get(gate.name, UNREACHABLE_COST)
            if best is None or rank < best[0]:
                best = (rank, gate, x_inputs)
        if best is not None:
            _rank, gate, x_inputs = best
            noncontrolling = 1
            if gate.kind in DOMINANT_VALUE:
                noncontrolling = 1 - DOMINANT_VALUE[gate.kind][0]
            src = min(
                x_inputs, key=lambda s: self._cc[s][noncontrolling]
            )
            return (src, noncontrolling)
        # Fall back: any X line feeding an X output cone.
        for line in self.network.inputs:
            if state.values[line][0] is X:
                return (line, 1)
        return None

    def _backtrace(self, state: _State, line: str, value: int) -> Tuple[str, int]:
        """Walk an X-path from the objective back to a primary input,
        choosing fan-ins by controllability: the *hardest* input when the
        objective needs all of them (fail fast), the *easiest* when any
        one suffices."""
        current, target = line, value
        guard = 0
        while not self.network.is_input(current):
            guard += 1
            if guard > len(self._topo) + len(self.network.inputs) + 5:
                break
            gate = self.network.gate(current)
            if gate.kind in (GateKind.NOT, GateKind.NAND, GateKind.NOR, GateKind.MIN):
                target = 1 - target
            x_inputs = [
                src for src in gate.inputs if state.values[src][0] is X
            ]
            if not x_inputs:
                x_inputs = list(gate.inputs)
            current = self._pick_backtrace_input(gate.kind, x_inputs, target)
        return current, target

    def _pick_backtrace_input(
        self, kind: GateKind, x_inputs: List[str], target: int
    ) -> str:
        if len(x_inputs) == 1:
            return x_inputs[0]
        # ``target`` already refers to the non-inverted core (the caller
        # flipped it for NAND/NOR/NOT/MIN), so AND-like cores need every
        # input at 1 and OR-like cores every input at 0.
        if kind in (GateKind.AND, GateKind.NAND):
            all_needed = target == 1
        elif kind in (GateKind.OR, GateKind.NOR):
            all_needed = target == 0
        else:
            return min(x_inputs, key=lambda s: min(self._cc[s]))
        chooser = max if all_needed else min
        return chooser(x_inputs, key=lambda s: self._cc[s][target])

    # ------------------------------------------------------------------
    # search
    # ------------------------------------------------------------------
    def generate_test_ex(
        self, fault: Fault, deadline: Optional[float] = None
    ) -> PodemResult:
        """Run the budgeted search and report *why* it stopped.

        ``deadline`` is an absolute :func:`time.monotonic` instant; a
        search still running past it returns ``aborted`` (the campaign
        driver's per-target timeout).  An exhausted decision tree is
        ``redundant`` — on these combinational networks PODEM is
        complete, so exhaustion is a proof of untestability.
        """
        assignment: Dict[str, Value] = {}
        decisions: List[Tuple[str, int, bool]] = []  # (pi, value, tried_both)
        backtracks = 0
        aborted = False

        def backtrack() -> bool:
            """Flip the most recent untried decision; False = exhausted."""
            nonlocal backtracks, aborted
            while decisions:
                pi, value, tried_both = decisions.pop()
                del assignment[pi]
                if not tried_both:
                    backtracks += 1
                    if backtracks > self.max_backtracks:
                        aborted = True
                        return False
                    assignment[pi] = 1 - value
                    decisions.append((pi, 1 - value, True))
                    return True
            return False

        def stopped() -> PodemResult:
            return PodemResult(
                status="aborted" if aborted else "redundant",
                backtracks=backtracks,
            )

        while True:
            if deadline is not None and time.monotonic() >= deadline:
                aborted = True
                return stopped()
            state = self._simulate(assignment, fault)
            if self._detected(state):
                test = {
                    name: (
                        assignment[name]
                        if assignment.get(name) is not X
                        else 0
                    )
                    for name in self.network.inputs
                }
                return PodemResult(
                    status="test",
                    test=test,
                    assignment={
                        pi: value for pi, value, _both in decisions
                    },
                    backtracks=backtracks,
                )
            if not self._possible(state, fault):
                if not backtrack():
                    return stopped()
                continue
            objective = self._objective(state, fault)
            if objective is None:
                # Fully assigned (or masked) without detection: this
                # branch of the decision tree is a dead end.
                if not backtrack():
                    return stopped()
                continue
            pi, value = self._backtrace(state, *objective)
            if pi in assignment:
                # Backtrace could not reach a fresh input: dead end.
                if not backtrack():
                    return stopped()
                continue
            assignment[pi] = value
            decisions.append((pi, value, False))

    def generate_test(self, fault: Fault) -> Optional[Dict[str, int]]:
        """A primary-input assignment detecting ``fault`` (single-vector
        sense), or ``None`` when the budgeted search finds no test."""
        return self.generate_test_ex(fault).test

    def generate_alternating_test(
        self, fault: Fault, attempts: int = 8
    ) -> Optional[Tuple[int, int]]:
        """A SCAL test pair (X, X̄): the fault flips the output at exactly
        one of the two periods (→ nonalternating pair)."""
        from ..logic.evaluate import outputs_with_fault

        test = self.generate_test(fault)
        if test is None:
            return None
        candidates = [test]
        # Vary the free variables a little for more completion choices.
        for k in range(attempts - 1):
            flipped = dict(test)
            names = list(self.network.inputs)
            flipped[names[k % len(names)]] ^= 1
            candidates.append(flipped)
        for candidate in candidates:
            point = sum(
                (candidate[name] & 1) << i
                for i, name in enumerate(self.network.inputs)
            )
            comp = {name: 1 - v for name, v in candidate.items()}
            good_x = outputs_with_fault(self.network, candidate)
            bad_x = outputs_with_fault(self.network, candidate, fault)
            good_xb = outputs_with_fault(self.network, comp)
            bad_xb = outputs_with_fault(self.network, comp, fault)
            flips_x = good_x != bad_x
            flips_xb = good_xb != bad_xb
            if flips_x != flips_xb:  # exactly one period flips
                full = (1 << len(self.network.inputs)) - 1
                return (point, point ^ full)
        return None


def structural_test_summary(
    network: Network,
    faults: Optional[Sequence[Fault]] = None,
    collapse: bool = False,
) -> Dict[str, int]:
    """Batch PODEM over a fault list; counts tested/untested faults.

    With ``collapse=True`` the universe is one representative stem fault
    per structural equivalence class, sorted by ``(line, value)`` — the
    counts are then independent of enumeration order and representative
    choice (equivalent faults are equi-testable).  ``untested`` splits
    into ``redundant`` (proved untestable) and ``aborted`` (budget hit).
    """
    from ..logic.faults import enumerate_stem_faults
    from .collapse import collapse_stem_faults

    podem = Podem(network)
    if faults is not None:
        universe: List[Fault] = list(faults)
    elif collapse:
        universe = sorted(
            collapse_stem_faults(network), key=lambda f: (f.line, f.value)
        )
    else:
        universe = list(enumerate_stem_faults(network))
    tested = redundant = aborted = 0
    for fault in universe:
        result = podem.generate_test_ex(fault)
        if result.status == "test":
            tested += 1
        elif result.status == "redundant":
            redundant += 1
        else:
            aborted += 1
    return {
        "faults": len(universe),
        "tested": tested,
        "untested": redundant + aborted,
        "redundant": redundant,
        "aborted": aborted,
    }
