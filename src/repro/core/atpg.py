"""Structural test generation (PODEM) for stuck-at faults.

The truth-table machinery of :mod:`repro.core.testgen` is exact but
exponential in the input count.  For wider networks this module provides
the classical structural alternative: **PODEM** (path-oriented decision
making) over five-valued logic — every line carries a (good, faulty)
value pair from {0, 1, X}, a *D* being (1, 0) and a *D̄* being (0, 1).

On top of the classic single-vector test, :func:`generate_alternating_test`
produces SCAL test *pairs*: a vector X such that the fault flips the
output at X but not at X̄ — then the pair (X, X̄) yields a nonalternating
output, which is what the alternating checker can see.  (A vector that
flips the output in *both* periods is precisely the incorrect
alternation of Theorem 3.1 and useless as a test.)

Validated against the exhaustive truth-table generator on every small
network in the test suite.
"""

from __future__ import annotations

import dataclasses
from typing import Dict, List, Optional, Sequence, Tuple

from ..logic.faults import Fault, PinStuckAt, StuckAt
from ..logic.gates import DOMINANT_VALUE, GateKind
from ..logic.network import Network

X = None  # the unknown value in three-valued simulation

Value = Optional[int]
Composite = Tuple[Value, Value]  # (good circuit, faulty circuit)


def _eval3(kind: GateKind, values: Sequence[Value]) -> Value:
    """Three-valued gate evaluation (X = unknown)."""
    if kind is GateKind.CONST0:
        return 0
    if kind is GateKind.CONST1:
        return 1
    if kind is GateKind.BUF:
        return values[0]
    if kind is GateKind.NOT:
        return None if values[0] is X else 1 - values[0]
    if kind in (GateKind.AND, GateKind.NAND):
        if any(v == 0 for v in values):
            out = 0
        elif any(v is X for v in values):
            return X
        else:
            out = 1
        return out if kind is GateKind.AND else 1 - out
    if kind in (GateKind.OR, GateKind.NOR):
        if any(v == 1 for v in values):
            out = 1
        elif any(v is X for v in values):
            return X
        else:
            out = 0
        return out if kind is GateKind.OR else 1 - out
    if kind in (GateKind.XOR, GateKind.XNOR):
        if any(v is X for v in values):
            return X
        out = sum(values) % 2
        return out if kind is GateKind.XOR else 1 - out
    if kind in (GateKind.MAJ, GateKind.MIN):
        ones = sum(1 for v in values if v == 1)
        zeros = sum(1 for v in values if v == 0)
        n = len(values)
        # Enough ones / zeros to decide regardless of the X inputs?
        if 2 * ones > n:
            out = 1
        elif 2 * (n - zeros) < n:
            out = 0
        else:
            return X
        return out if kind is GateKind.MAJ else 1 - out
    raise ValueError(f"unsupported gate kind {kind}")


@dataclasses.dataclass
class _State:
    """Composite line values during one PODEM search."""

    values: Dict[str, Composite]

    def good(self, line: str) -> Value:
        return self.values[line][0]

    def faulty(self, line: str) -> Value:
        return self.values[line][1]


class Podem:
    """PODEM test generator for one combinational network."""

    def __init__(self, network: Network, max_backtracks: int = 2000) -> None:
        self.network = network
        self.max_backtracks = max_backtracks
        self._topo = list(network.gates)
        # Lines whose value can reach some output — fixed for the network,
        # so computed once instead of per D-frontier check.
        reachable = set()
        for out in network.outputs:
            reachable |= network.cone(out)
        self._reachable = frozenset(reachable)

    # ------------------------------------------------------------------
    # simulation
    # ------------------------------------------------------------------
    def _simulate(
        self, assignment: Dict[str, Value], fault: Fault
    ) -> _State:
        values: Dict[str, Composite] = {}
        f_line = fault.line if isinstance(fault, StuckAt) else None
        for name in self.network.inputs:
            good = assignment.get(name, X)
            faulty = good
            if f_line == name:
                faulty = fault.value
            values[name] = (good, faulty)
        for gate in self._topo:
            good_in = [values[src][0] for src in gate.inputs]
            faulty_in = [values[src][1] for src in gate.inputs]
            if isinstance(fault, PinStuckAt) and fault.gate == gate.name:
                faulty_in[fault.pin_index] = fault.value
            good = _eval3(gate.kind, good_in)
            faulty = _eval3(gate.kind, faulty_in)
            if f_line == gate.name:
                faulty = fault.value
            values[gate.name] = (good, faulty)
        return _State(values)

    def _detected(self, state: _State) -> bool:
        return any(
            state.good(out) is not X
            and state.faulty(out) is not X
            and state.good(out) != state.faulty(out)
            for out in self.network.outputs
        )

    def _possible(self, state: _State, fault: Fault) -> bool:
        """Could this partial assignment still lead to detection?"""
        site_good, site_faulty = self._site_values(state, fault)
        if site_good is not X and site_faulty is not X and site_good == site_faulty:
            return False  # fault not activated and can no longer be
        # D-frontier: some line with a fault effect or an undecided value
        # must still reach an output.
        frontier = {
            line
            for line, (g, f) in state.values.items()
            if (g is X or f is X or g != f)
        }
        if not frontier:
            return False
        return bool(frontier & self._reachable)

    def _site_values(self, state: _State, fault: Fault) -> Composite:
        if isinstance(fault, StuckAt):
            return state.values[fault.line]
        gate = self.network.gate(fault.gate)
        src = gate.inputs[fault.pin_index]
        good = state.values[src][0]
        return good, fault.value

    # ------------------------------------------------------------------
    # objective and backtrace
    # ------------------------------------------------------------------
    def _objective(self, state: _State, fault: Fault) -> Optional[Tuple[str, int]]:
        site_good, _ = self._site_values(state, fault)
        stuck = fault.value
        site_line = (
            fault.line
            if isinstance(fault, StuckAt)
            else self.network.gate(fault.gate).inputs[fault.pin_index]
        )
        if site_good is X:
            return (site_line, 1 - stuck)  # activate the fault
        # Propagate: find a gate whose output is X but has a fault effect
        # on some input — set another X input to the non-controlling value.
        for gate in self._topo:
            out_g, out_f = state.values[gate.name]
            if out_g is not X and out_f is not X:
                continue
            has_effect = any(
                state.values[src][0] is not X
                and state.values[src][1] is not X
                and state.values[src][0] != state.values[src][1]
                for src in gate.inputs
            )
            if not has_effect:
                continue
            for src in gate.inputs:
                if state.values[src][0] is X:
                    noncontrolling = 1
                    if gate.kind in DOMINANT_VALUE:
                        noncontrolling = 1 - DOMINANT_VALUE[gate.kind][0]
                    return (src, noncontrolling)
        # Fall back: any X line feeding an X output cone.
        for line in self.network.inputs:
            if state.values[line][0] is X:
                return (line, 1)
        return None

    def _backtrace(self, state: _State, line: str, value: int) -> Tuple[str, int]:
        """Walk an X-path from the objective back to a primary input."""
        current, target = line, value
        guard = 0
        while not self.network.is_input(current):
            guard += 1
            if guard > len(self._topo) + len(self.network.inputs) + 5:
                break
            gate = self.network.gate(current)
            if gate.kind in (GateKind.NOT, GateKind.NAND, GateKind.NOR, GateKind.MIN):
                target = 1 - target
            x_inputs = [
                src for src in gate.inputs if state.values[src][0] is X
            ]
            if not x_inputs:
                x_inputs = list(gate.inputs)
            current = x_inputs[0]
        return current, target

    # ------------------------------------------------------------------
    # search
    # ------------------------------------------------------------------
    def generate_test(self, fault: Fault) -> Optional[Dict[str, int]]:
        """A primary-input assignment detecting ``fault`` (single-vector
        sense), or ``None`` when the budgeted search finds no test."""
        assignment: Dict[str, Value] = {}
        decisions: List[Tuple[str, int, bool]] = []  # (pi, value, tried_both)
        backtracks = 0

        def backtrack() -> bool:
            """Flip the most recent untried decision; False = exhausted."""
            nonlocal backtracks
            while decisions:
                pi, value, tried_both = decisions.pop()
                del assignment[pi]
                if not tried_both:
                    backtracks += 1
                    if backtracks > self.max_backtracks:
                        return False
                    assignment[pi] = 1 - value
                    decisions.append((pi, 1 - value, True))
                    return True
            return False

        while True:
            state = self._simulate(assignment, fault)
            if self._detected(state):
                return {
                    name: (
                        assignment[name]
                        if assignment.get(name) is not X
                        else 0
                    )
                    for name in self.network.inputs
                }
            if not self._possible(state, fault):
                if not backtrack():
                    return None
                continue
            objective = self._objective(state, fault)
            if objective is None:
                # Fully assigned (or masked) without detection: this
                # branch of the decision tree is a dead end.
                if not backtrack():
                    return None
                continue
            pi, value = self._backtrace(state, *objective)
            if pi in assignment:
                # Backtrace could not reach a fresh input: dead end.
                if not backtrack():
                    return None
                continue
            assignment[pi] = value
            decisions.append((pi, value, False))

    def generate_alternating_test(
        self, fault: Fault, attempts: int = 8
    ) -> Optional[Tuple[int, int]]:
        """A SCAL test pair (X, X̄): the fault flips the output at exactly
        one of the two periods (→ nonalternating pair)."""
        from ..logic.evaluate import outputs_with_fault

        test = self.generate_test(fault)
        if test is None:
            return None
        candidates = [test]
        # Vary the free variables a little for more completion choices.
        for k in range(attempts - 1):
            flipped = dict(test)
            names = list(self.network.inputs)
            flipped[names[k % len(names)]] ^= 1
            candidates.append(flipped)
        for candidate in candidates:
            point = sum(
                (candidate[name] & 1) << i
                for i, name in enumerate(self.network.inputs)
            )
            comp = {name: 1 - v for name, v in candidate.items()}
            good_x = outputs_with_fault(self.network, candidate)
            bad_x = outputs_with_fault(self.network, candidate, fault)
            good_xb = outputs_with_fault(self.network, comp)
            bad_xb = outputs_with_fault(self.network, comp, fault)
            flips_x = good_x != bad_x
            flips_xb = good_xb != bad_xb
            if flips_x != flips_xb:  # exactly one period flips
                full = (1 << len(self.network.inputs)) - 1
                return (point, point ^ full)
        return None


def structural_test_summary(
    network: Network, faults: Optional[Sequence[Fault]] = None
) -> Dict[str, int]:
    """Batch PODEM over a fault list; counts tested/untested faults."""
    from ..logic.faults import enumerate_stem_faults

    podem = Podem(network)
    universe = (
        list(faults)
        if faults is not None
        else list(enumerate_stem_faults(network))
    )
    tested = untested = 0
    for fault in universe:
        if podem.generate_test(fault) is not None:
            tested += 1
        else:
            untested += 1
    return {"faults": len(universe), "tested": tested, "untested": untested}
