"""Coverage beyond the single-fault model (Definitions 2.2–2.3).

The thesis scopes its guarantee carefully: "Although the system is also
self-checking for many multiple faults, the fault coverage is complete
only for single faults" (Section 2.2) and lists "not all failures are
covered" among SCAL's disadvantages (Section 2.4).  Section 8.3's
recommendation 5 asks for multiple-fault treatment of minority modules.

This module quantifies those statements: enumerate (or sample) double,
unidirectional, and general multiple stuck-at faults, classify each with
the SCAL oracle, and report how coverage decays as the fault class
widens — the evaluation the thesis gestures at but never runs.
"""

from __future__ import annotations

import dataclasses
import itertools
import random
from typing import Iterable, List, Optional, Sequence

from ..engine import FaultSweep
from ..logic.faults import MultipleFault, StuckAt
from ..logic.network import Network


@dataclasses.dataclass(frozen=True)
class ClassCoverage:
    """Oracle statistics for one fault class."""

    fault_class: str
    total: int
    detected: int
    silent: int
    dangerous: int

    @property
    def dangerous_fraction(self) -> float:
        return self.dangerous / self.total if self.total else 0.0

    @property
    def detected_fraction(self) -> float:
        return self.detected / self.total if self.total else 0.0

    def row(self) -> str:
        return (
            f"{self.fault_class:22s} {self.total:6d} "
            f"{self.detected_fraction:9.3f} {self.silent / max(self.total, 1):7.3f} "
            f"{self.dangerous_fraction:10.3f}"
        )


def _classify(
    sweep: FaultSweep, faults: Iterable[MultipleFault], label: str
) -> ClassCoverage:
    total = detected = silent = dangerous = 0
    for fault in faults:
        total += 1
        status = sweep.classify(fault)
        if status == "dangerous":
            dangerous += 1
        elif status == "detected":
            detected += 1
        else:
            silent += 1
    return ClassCoverage(label, total, detected, silent, dangerous)


def _stems(network: Network) -> List[str]:
    live = set()
    for out in network.outputs:
        live |= network.cone(out)
    return [line for line in network.lines() if line in live]


def double_faults(
    network: Network,
    sample: Optional[int] = None,
    rng: Optional[random.Random] = None,
) -> List[MultipleFault]:
    """All (or a sample of) simultaneous two-line stem stuck-at faults."""
    stems = _stems(network)
    combos = [
        MultipleFault((StuckAt(a, va), StuckAt(b, vb)))
        for a, b in itertools.combinations(stems, 2)
        for va in (0, 1)
        for vb in (0, 1)
    ]
    if sample is not None and sample < len(combos):
        rng = rng or random.Random(0)
        combos = rng.sample(combos, sample)
    return combos


def unidirectional_faults(
    network: Network,
    max_lines: int = 3,
    sample: Optional[int] = None,
    rng: Optional[random.Random] = None,
) -> List[MultipleFault]:
    """Definition 2.2: any number of lines stuck at *one* value."""
    stems = _stems(network)
    faults: List[MultipleFault] = []
    for k in range(2, max_lines + 1):
        for group in itertools.combinations(stems, k):
            for value in (0, 1):
                faults.append(
                    MultipleFault(tuple(StuckAt(s, value) for s in group))
                )
    if sample is not None and sample < len(faults):
        rng = rng or random.Random(0)
        faults = rng.sample(faults, sample)
    return faults


def random_multiple_faults(
    network: Network,
    count: int,
    max_lines: int = 4,
    rng: Optional[random.Random] = None,
) -> List[MultipleFault]:
    """Definition 2.3: arbitrary multiple stuck-ats, mixed polarities."""
    rng = rng or random.Random(0)
    stems = _stems(network)
    faults = []
    for _ in range(count):
        k = rng.randint(2, min(max_lines, len(stems)))
        group = rng.sample(stems, k)
        faults.append(
            MultipleFault(
                tuple(StuckAt(s, rng.randint(0, 1)) for s in group)
            )
        )
    return faults


def coverage_by_class(
    network: Network,
    sample: int = 200,
    seed: int = 0,
) -> List[ClassCoverage]:
    """Oracle coverage across single / double / unidirectional /
    multiple fault classes — the Section 2.4 quantification."""
    rng = random.Random(seed)
    sweep = FaultSweep(network)
    singles = [
        MultipleFault((StuckAt(line, value),))
        for line in _stems(network)
        for value in (0, 1)
    ]
    rows = [
        _classify(sweep, singles, "single (Def 2.1)"),
        _classify(
            sweep,
            double_faults(network, sample=sample, rng=rng),
            "double",
        ),
        _classify(
            sweep,
            unidirectional_faults(network, sample=sample, rng=rng),
            "unidirectional (2.2)",
        ),
        _classify(
            sweep,
            random_multiple_faults(network, count=sample, rng=rng),
            "multiple (Def 2.3)",
        ),
    ]
    return rows


def render_coverage(rows: Sequence[ClassCoverage]) -> str:
    header = (
        f"{'fault class':22s} {'faults':>6s} {'detected':>9s} "
        f"{'silent':>7s} {'dangerous':>10s}"
    )
    return "\n".join([header] + [row.row() for row in rows])
