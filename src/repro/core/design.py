"""Constructive SCAL design and automatic repair.

The thesis closes (Section 8.3, recommendation 1) by asking for
"constructive design procedures for combinational logic: the tools for
analyzing whether a network is self-checking have been provided; it may
now be possible to show techniques of designing SCAL".  This module
implements two such procedures on top of Algorithm 3.1:

* :func:`design_scal_network` — the guaranteed-by-construction route:
  self-dualize every output with the period clock (Yamamoto) and
  re-synthesize two-level, which Section 3.3's results make
  self-checking; verified by the oracle before returning.
* :func:`make_self_checking` — the *repair* route generalizing the
  Figure 3.7 fix: run Algorithm 3.1, and for every failing line
  duplicate its driving gate once per fanout branch (the thesis's
  "fed into a separate NAND gate so that line 20 no longer fans out"),
  iterating until the analysis is clean.  Lines that fail without
  fanning out cannot be fixed by duplication; their output cone is
  re-synthesized two-level as the fallback.
"""

from __future__ import annotations

import dataclasses
from typing import Dict, List, Sequence, Tuple

from ..logic.evaluate import functionally_equivalent, line_tables
from ..logic.network import Gate, Network
from ..logic.selfdual import PERIOD_CLOCK, self_dualize_table
from ..logic.synthesis import multi_output_sop
from ..logic.truthtable import TruthTable
from .analysis import analyze_network
from .simulate import ScalSimulator


@dataclasses.dataclass(frozen=True)
class RepairStep:
    """One action of the repair loop."""

    action: str  # "duplicate" or "resynthesize"
    target: str  # line or output name
    gates_added: int


@dataclasses.dataclass(frozen=True)
class RepairReport:
    """Outcome of :func:`make_self_checking`."""

    network: Network
    steps: Tuple[RepairStep, ...]
    success: bool
    gates_before: int
    gates_after: int

    @property
    def gate_overhead(self) -> int:
        return self.gates_after - self.gates_before

    def summary(self) -> str:
        status = "repaired" if self.success else "NOT repaired"
        lines = [
            f"{self.network.name}: {status} "
            f"({self.gates_before} -> {self.gates_after} gates)"
        ]
        for step in self.steps:
            lines.append(
                f"  {step.action} {step.target} (+{step.gates_added} gates)"
            )
        return "\n".join(lines)


def design_scal_network(
    tables: Dict[str, TruthTable],
    names: Sequence[str],
    clock_name: str = PERIOD_CLOCK,
    style: str = "and-or",
    share_products: bool = True,
    network_name: str = "scal_design",
    verify: bool = True,
) -> Network:
    """Build a SCAL network for arbitrary output functions.

    Self-dualizes each output (one shared period-clock variable) and
    synthesizes two-level with an input inverter layer.  With
    ``verify=True`` the result is certified by the exhaustive oracle —
    a failed certificate raises, so callers can rely on the contract.
    """
    sd_tables = {
        out: self_dualize_table(table, clock_name)
        for out, table in tables.items()
    }
    sd_names = tuple(names) + (clock_name,)
    network = multi_output_sop(
        sd_tables,
        sd_names,
        style=style,
        network_name=network_name,
        share_products=share_products,
    )
    if verify:
        verdict = ScalSimulator(network).verdict()
        if not verdict.is_self_checking:
            # Product sharing can, in principle, couple outputs in a way
            # Corollary 3.2 does not rescue; fall back to private
            # products, which restores the per-output two-level argument.
            network = multi_output_sop(
                sd_tables,
                sd_names,
                style=style,
                network_name=network_name,
                share_products=False,
            )
            verdict = ScalSimulator(network).verdict()
            if not verdict.is_self_checking:
                raise AssertionError(
                    "two-level SCAL construction failed certification: "
                    + verdict.summary()
                )
    return network


def duplicate_gate_for_branches(network: Network, line: str) -> Network:
    """The Figure 3.7 transform: one private copy of ``line``'s driving
    gate per fanout pin, so no copy fans out."""
    if network.is_input(line):
        raise ValueError("cannot duplicate a primary input")
    driver = network.gate(line)
    pins = network.fanout_count(line)
    if pins <= 1:
        return network
    copies: List[Gate] = []
    new_gates: List[Gate] = []
    copy_index = 0
    for gate in network.gates:
        if gate.name == line:
            new_gates.append(gate)  # keep the original for copy #1
            continue
        if line not in gate.inputs:
            new_gates.append(gate)
            continue
        new_inputs = []
        for src in gate.inputs:
            if src != line:
                new_inputs.append(src)
                continue
            if copy_index == 0:
                new_inputs.append(line)  # first branch keeps the original
            else:
                copy_name = f"{line}_dup{copy_index}"
                copies.append(Gate(copy_name, driver.kind, driver.inputs))
                new_inputs.append(copy_name)
            copy_index += 1
        new_gates.append(Gate(gate.name, gate.kind, tuple(new_inputs)))
    return Network(
        network.inputs,
        new_gates + copies,
        network.outputs,
        name=network.name,
    )


def _resynthesize_output(network: Network, output: str) -> Network:
    """Replace one output's cone with a private two-level realization."""
    tables = line_tables(network)
    target = tables[output]
    replacement = multi_output_sop(
        {output: target.restrict_names(tuple(network.inputs))},
        network.inputs,
        network_name="resynth",
        share_products=False,
    )
    keep: List[Gate] = []
    still_needed = set()
    for out in network.outputs:
        if out != output:
            still_needed |= network.cone(out)
    for gate in network.gates:
        if gate.name in still_needed and gate.name != output:
            keep.append(gate)
    rename = {}
    for gate in replacement.gates:
        new_name = gate.name if gate.name == output else f"rs_{output}_{gate.name}"
        rename[gate.name] = new_name
    for gate in replacement.gates:
        keep.append(
            Gate(
                rename[gate.name],
                gate.kind,
                tuple(rename.get(src, src) for src in gate.inputs),
            )
        )
    return Network(network.inputs, keep, network.outputs, name=network.name)


def make_self_checking(
    network: Network,
    max_iterations: int = 10,
    verify: bool = True,
) -> RepairReport:
    """Repair an alternating network until Algorithm 3.1 accepts it.

    Strategy per iteration: take the failing lines; duplicate the driver
    of any that fan out (Figure 3.7); if a failing line does not fan out
    (duplication cannot help), re-synthesize the cone of one affected
    output two-level.  Functional equivalence is preserved at every step
    and asserted at the end.
    """
    original = network
    steps: List[RepairStep] = []
    current = network
    for _ in range(max_iterations):
        analysis = analyze_network(current)
        if analysis.is_self_checking:
            break
        failing = analysis.failing_lines()
        if not failing:
            break
        progressed = False
        for line in failing:
            if current.has_line(line) and current.fanout_count(line) > 1:
                before = current.gate_count()
                current = duplicate_gate_for_branches(current, line)
                steps.append(
                    RepairStep(
                        "duplicate", line, current.gate_count() - before
                    )
                )
                progressed = True
        if not progressed:
            # Fall back: re-synthesize the first affected output.
            line = failing[0]
            verdict = analysis.lines[line]
            output = verdict.failing_outputs()[0]
            before = current.gate_count()
            current = _resynthesize_output(current, output)
            steps.append(
                RepairStep(
                    "resynthesize", output, current.gate_count() - before
                )
            )
    final = analyze_network(current)
    success = final.is_self_checking
    if verify and success:
        assert functionally_equivalent(original, current)
        oracle = ScalSimulator(current).verdict(include_pins=False)
        success = oracle.is_self_checking
    return RepairReport(
        network=current,
        steps=tuple(steps),
        success=success,
        gates_before=original.gate_count(),
        gates_after=current.gate_count(),
    )
