"""Redundancy and testability of lines (Theorems 3.3–3.5).

Theorem 3.4: a line is *redundant* when ``A ∨ C = 0`` — the network
output never changes whichever constant the line is forced to, for all
inputs.  Redundant lines carry untestable faults, so an irredundant
self-dual network is self-testing (Theorem 3.5) and Algorithm 3.1 assumes
irredundancy; this module supplies the check and the Section 3.2 note
about one-direction-testable lines ("the subnetwork generating the line
value may be removed and replaced by a constant").
"""

from __future__ import annotations

import dataclasses
from typing import Dict, List, Optional

from ..logic.evaluate import line_tables
from ..logic.faults import StuckAt
from ..logic.gates import GateKind
from ..logic.network import Gate, Network


@dataclasses.dataclass(frozen=True)
class LineTestability:
    """Which stuck-at directions on a line can affect any network output."""

    line: str
    sa0_observable: bool
    sa1_observable: bool

    @property
    def redundant(self) -> bool:
        """Theorem 3.4: neither direction ever changes any output."""
        return not (self.sa0_observable or self.sa1_observable)

    @property
    def one_direction_only(self) -> Optional[int]:
        """The single testable stuck value, if exactly one direction is
        observable (Section 3.2: the line then acts as the constant equal
        to the *untestable* stuck value and can be replaced by it)."""
        if self.sa0_observable and not self.sa1_observable:
            return 0
        if self.sa1_observable and not self.sa0_observable:
            return 1
        return None


def line_testability(network: Network, line: str) -> LineTestability:
    """Observability of each stuck direction over all outputs and inputs."""
    normal = line_tables(network)
    observable = {}
    for value in (0, 1):
        faulty = line_tables(network, StuckAt(line, value))
        observable[value] = any(
            (normal[out] ^ faulty[out]).bits for out in network.outputs
        )
    return LineTestability(line, observable[0], observable[1])


def redundant_lines(network: Network) -> List[str]:
    """All *live* lines satisfying Theorem 3.4's ``A ∨ C = 0``.

    Lines outside every output cone (unconnected inputs, dead gates) are
    not lines of the network in the thesis's sense and are skipped;
    :func:`prune_dead_logic` removes dead gates outright.
    """
    live = set()
    for out in network.outputs:
        live |= network.cone(out)
    return [
        line
        for line in network.lines()
        if line in live and line_testability(network, line).redundant
    ]


def is_irredundant(network: Network) -> bool:
    """Premise of Theorem 3.5 and of Algorithm 3.1."""
    return not redundant_lines(network)


def constant_replacements(network: Network) -> Dict[str, int]:
    """Lines testable in only one direction, with the constant value the
    Section 3.2 transformation would substitute for them.

    A line testable only for stuck-at ``s`` behaves, for all detectable
    purposes, like the constant ``s̄`` (stuck-at ``s̄`` is unobservable,
    i.e. indistinguishable from normal operation); the thesis replaces
    the generating subnetwork by that constant before further analysis.
    """
    replacements: Dict[str, int] = {}
    for line in network.lines():
        info = line_testability(network, line)
        direction = info.one_direction_only
        if direction is not None:
            replacements[line] = 1 - direction
    return replacements


def apply_constant_replacements(network: Network) -> Network:
    """Rebuild the network with one-direction-testable lines tied to
    constants (the Section 3.2 preprocessing step).

    Only the *driving gate* of each replaced line is changed to a
    constant; dead upstream logic is then pruned to keep the result
    irredundant.
    """
    replacements = constant_replacements(network)
    if not replacements:
        return network
    gates: List[Gate] = []
    for gate in network.gates:
        if gate.name in replacements:
            kind = GateKind.CONST1 if replacements[gate.name] else GateKind.CONST0
            gates.append(Gate(gate.name, kind, ()))
        else:
            gates.append(gate)
    rebuilt = Network(network.inputs, gates, network.outputs, name=network.name)
    return prune_dead_logic(rebuilt)


def prune_dead_logic(network: Network) -> Network:
    """Drop gates outside every output cone (keeps all primary inputs)."""
    live = set()
    for out in network.outputs:
        live |= network.cone(out)
    gates = [g for g in network.gates if g.name in live]
    return Network(network.inputs, gates, network.outputs, name=network.name)
