"""Test generation for stuck-at faults under alternating operation
(Theorem 3.2 and its symbol set A, B, C, D, E, F).

For a line ``g`` the thesis defines (Section 3.2):

    A = F(X,0) ⊕ F(X,G(X))        — s-a-0 flips the first-period output
    B = F(X̄,0) ⊕ F(X̄,G(X̄))     — s-a-0 flips the second-period output
    C = F(X,1) ⊕ F(X,G(X))        — same for s-a-1
    D = F(X̄,1) ⊕ F(X̄,G(X̄))
    E = A & B,   F = C & D

Theorem 3.2: line ``g`` can be tested for stuck-at 0 iff ``E = 0``, and
then every point of ``A ∨ B`` is a test (the pair ``(X, X̄)`` yields a
nonalternating faulty output); dually for stuck-at 1 with ``F`` and
``C ∨ D``.  Points of ``E``/``F`` are exactly the incorrect-alternating
pairs of Corollary 3.1.

Because the test is the *pair*, "whichever input of the input pair is
applied first is irrelevant" — tests are reported as canonical pairs.
"""

from __future__ import annotations

import dataclasses
from typing import Dict, List, Optional, Tuple

from ..logic.evaluate import line_tables
from ..logic.faults import StuckAt
from ..logic.network import Network
from ..logic.truthtable import TruthTable
from .collapse import equivalence_collapse
from .simulate import canonical_pairs


@dataclasses.dataclass(frozen=True)
class StuckAtTestPlan:
    """Theorem 3.2's quantities for one line and one output."""

    line: str
    output: str
    #: A, B (s-a-0) and C, D (s-a-1) as point masks
    a: TruthTable
    b: TruthTable
    c: TruthTable
    d: TruthTable

    @property
    def e(self) -> TruthTable:
        return self.a & self.b

    @property
    def f(self) -> TruthTable:
        return self.c & self.d

    @property
    def sa0_testable(self) -> bool:
        """Theorem 3.2: iff E = 0 can the line be tested for s-a-0."""
        return self.e.is_zero()

    @property
    def sa1_testable(self) -> bool:
        return self.f.is_zero()

    def sa0_tests(self) -> List[Tuple[int, int]]:
        """Canonical test pairs for stuck-at 0 (``A ∨ B`` points whose
        pair is not an incorrect alternation)."""
        mask = (self.a | self.b) & ~self.e & ~self.e.co_reflect()
        return canonical_pairs(mask | mask.co_reflect())

    def sa1_tests(self) -> List[Tuple[int, int]]:
        mask = (self.c | self.d) & ~self.f & ~self.f.co_reflect()
        return canonical_pairs(mask | mask.co_reflect())

    def tests(self, stuck_value: int) -> List[Tuple[int, int]]:
        return self.sa0_tests() if stuck_value == 0 else self.sa1_tests()


def test_plan(
    network: Network,
    line: str,
    output: Optional[str] = None,
    normal_tables: Optional[Dict[str, TruthTable]] = None,
) -> StuckAtTestPlan:
    """Compute Theorem 3.2's A, B, C, D masks for one line.

    ``B`` and ``D`` are indexed by the *first-period* input ``X`` (the
    anchor of the pair), hence the ``co_reflect`` on the second-period
    difference.
    """
    if output is None:
        if len(network.outputs) != 1:
            raise ValueError("network has multiple outputs; name one")
        output = network.outputs[0]
    tables = normal_tables if normal_tables is not None else line_tables(network)
    t_normal = tables[output]
    diffs = {}
    for value in (0, 1):
        t_fault = line_tables(network, StuckAt(line, value))[output]
        diffs[value] = t_normal ^ t_fault
    return StuckAtTestPlan(
        line=line,
        output=output,
        a=diffs[0],
        b=diffs[0].co_reflect(),
        c=diffs[1],
        d=diffs[1].co_reflect(),
    )


def format_pair(pair: Tuple[int, int], names: Tuple[str, ...]) -> str:
    """Render a test pair as thesis-style bit strings, e.g. ``(1011,0100)``.

    The thesis prints input vectors most-significant-variable first; we
    print ``names`` order left to right.
    """
    def bits(point: int) -> str:
        return "".join(str((point >> i) & 1) for i in range(len(names)))

    return f"({bits(pair[0])},{bits(pair[1])})"


def all_test_pairs(
    network: Network,
    output: Optional[str] = None,
) -> Dict[Tuple[str, int], List[Tuple[int, int]]]:
    """Test pairs for every (line, stuck value); empty list = untestable.

    A complete alternating test sequence for the network is any input
    schedule applying at least one pair from every non-empty entry.
    """
    plans = {}
    for line in network.lines():
        plan = test_plan(network, line, output)
        plans[(line, 0)] = plan.sa0_tests() if plan.sa0_testable else []
        plans[(line, 1)] = plan.sa1_tests() if plan.sa1_testable else []
    return plans


def greedy_test_schedule(
    network: Network,
    output: Optional[str] = None,
    collapse: bool = True,
) -> List[Tuple[int, int]]:
    """A small set of input pairs covering every testable stuck-at fault.

    Greedy set cover over the per-fault test-pair lists; the thesis points
    out exhaustive application of all pairs suffices ("assuming all inputs
    are applied at some time"), but a compact schedule is what a real
    tester would apply.

    With ``collapse=True`` (the default) structurally equivalent faults
    are merged into one cover obligation before the greedy pass —
    equivalent faults have identical faulty functions, hence identical
    test-pair lists, so collapsing never loses coverage but does stop
    the schedule length from depending on how many aliases a class has.
    The selection is deterministic: candidate pairs are scanned in
    sorted order and ties break toward the smallest pair, so the result
    is independent of set/dict iteration order.
    """
    plans = all_test_pairs(network, output)
    rep: Dict[Tuple[str, int], Tuple[str, int]] = {}
    if collapse:
        for members in equivalence_collapse(network).values():
            stems = sorted(
                (m.line, m.value) for m in members if isinstance(m, StuckAt)
            )
            for key in stems:
                rep[key] = stems[0]
    uncovered = set()
    pair_covers: Dict[Tuple[int, int], set] = {}
    for key in sorted(plans):
        tests = plans[key]
        if not tests:
            continue
        obligation = rep.get(key, key)
        uncovered.add(obligation)
        for pair in tests:
            pair_covers.setdefault(pair, set()).add(obligation)
    schedule: List[Tuple[int, int]] = []
    candidates = sorted(pair_covers)
    while uncovered:
        best_pair, best_gain = None, 0
        for pair in candidates:
            gain = len(pair_covers[pair] & uncovered)
            if gain > best_gain:
                best_pair, best_gain = pair, gain
        if best_pair is None:
            break
        schedule.append(best_pair)
        uncovered -= pair_covers[best_pair]
    return schedule
