"""Report rendering: the Figure 3.6 fault table and analysis summaries.

Figure 3.6 of the thesis tabulates, for chosen lines and stuck values,
the two-period output pair produced for every input pair, marking

* ``X`` — a nonalternating pair (the fault is *detected* there),
* ``*`` — an incorrect alternating pair (the fault silently corrupts the
  output — the self-checking violation).

This module regenerates that table for any network, which is how the
E-FIG3.4 bench reproduces the thesis's walkthrough.
"""

from __future__ import annotations

import dataclasses
from typing import Dict, List, Optional, Sequence, Tuple, Union

from ..logic.evaluate import line_tables
from ..logic.faults import Fault, MultipleFault, StuckAt
from ..logic.network import Network

FaultLike = Union[Fault, MultipleFault]


@dataclasses.dataclass(frozen=True)
class PairEntry:
    """One cell of the fault table: the output pair plus its mark."""

    first: int
    second: int
    mark: str  # "" normal, "X" nonalternating, "*" incorrect alternating

    def render(self) -> str:
        return f"{self.first},{self.second}{self.mark}"


@dataclasses.dataclass(frozen=True)
class FaultTableRow:
    """One row: a (fault, output) pair across all input pairs."""

    label: str
    output: str
    entries: Tuple[PairEntry, ...]

    @property
    def detected(self) -> bool:
        return any(e.mark == "X" for e in self.entries)

    @property
    def has_incorrect_alternation(self) -> bool:
        return any(e.mark == "*" for e in self.entries)


def input_pairs(network: Network) -> List[Tuple[int, int]]:
    """Canonical input pairs ``(X, X̄)`` in the thesis's order.

    Anchors are the points whose *first-listed* input is 0, enumerated as
    ascending binary numbers with the first input as the most significant
    bit.  For three inputs A, B, C this yields (000,111), (001,110),
    (010,101), (011,100) read as ABC strings — exactly Figure 3.6's
    column order.
    """
    n = len(network.inputs)
    full = (1 << n) - 1
    pairs = []
    for value in range(1 << max(n - 1, 0)):
        point = 0
        for i in range(n):
            if (value >> (n - 1 - i)) & 1:
                point |= 1 << i
        pairs.append((point, point ^ full))
    return pairs


def pair_label(pair: Tuple[int, int], network: Network) -> str:
    def bits(point: int) -> str:
        return "".join(str((point >> i) & 1) for i in range(len(network.inputs)))

    return f"({bits(pair[0])},{bits(pair[1])})"


def fault_table(
    network: Network,
    faults: Sequence[FaultLike],
    outputs: Optional[Sequence[str]] = None,
    include_normal: bool = True,
) -> List[FaultTableRow]:
    """Regenerate a Figure 3.6-style table.

    ``faults`` selects the rows (typically the interesting stem faults);
    each produces one row per output that depends on the faulted line.
    """
    outs = list(outputs) if outputs is not None else list(network.outputs)
    pairs = input_pairs(network)
    normal = line_tables(network)
    rows: List[FaultTableRow] = []
    if include_normal:
        for out in outs:
            entries = tuple(
                PairEntry(normal[out].value(a), normal[out].value(b), "")
                for a, b in pairs
            )
            rows.append(FaultTableRow(label="normal", output=out, entries=entries))
    for fault in faults:
        faulty = line_tables(network, fault)
        for out in outs:
            if isinstance(fault, StuckAt) and fault.line not in network.cone(out):
                continue
            entries = []
            for a, b in pairs:
                v1, v2 = faulty[out].value(a), faulty[out].value(b)
                n1, n2 = normal[out].value(a), normal[out].value(b)
                if v1 == v2:
                    mark = "X"
                elif (v1, v2) != (n1, n2):
                    mark = "*"
                else:
                    mark = ""
                entries.append(PairEntry(v1, v2, mark))
            rows.append(
                FaultTableRow(
                    label=fault.describe(), output=out, entries=tuple(entries)
                )
            )
    return rows


def render_fault_table(network: Network, rows: Sequence[FaultTableRow]) -> str:
    """Text rendering in the thesis's layout."""
    pairs = input_pairs(network)
    header = ["line/fault", "output"] + [pair_label(p, network) for p in pairs]
    widths = [max(len(header[0]), max((len(r.label) for r in rows), default=0)),
              max(len(header[1]), max((len(r.output) for r in rows), default=0))]
    widths += [max(len(h), 6) for h in header[2:]]
    lines = []

    def fmt(cells: Sequence[str]) -> str:
        return "  ".join(cell.ljust(width) for cell, width in zip(cells, widths))

    lines.append(fmt(header))
    lines.append(fmt(["-" * w for w in widths]))
    for row in rows:
        cells = [row.label, row.output] + [e.render() for e in row.entries]
        lines.append(fmt(cells))
    return "\n".join(lines)


def undetected_faults(rows: Sequence[FaultTableRow]) -> List[str]:
    """Fault labels that show an incorrect alternation (``*``) on some
    output without a same-pair detection on any output — the Figure 3.6
    reading that condemns line 20."""
    by_fault: Dict[str, List[FaultTableRow]] = {}
    for row in rows:
        if row.label == "normal":
            continue
        by_fault.setdefault(row.label, []).append(row)
    bad: List[str] = []
    for label, fault_rows in by_fault.items():
        n_pairs = len(fault_rows[0].entries)
        for idx in range(n_pairs):
            wrong = any(r.entries[idx].mark == "*" for r in fault_rows)
            caught = any(r.entries[idx].mark == "X" for r in fault_rows)
            if wrong and not caught:
                bad.append(label)
                break
    return bad
