"""Fault diagnosis: locating the failure after detection (Section 1.3).

The thesis classifies reliability techniques as tolerance / diagnosis /
detection and builds detection; once SCAL's checker fires, somebody has
to find the broken line.  This module supplies the classical
dictionary-based locator:

* :func:`build_fault_dictionary` — per candidate fault, the full
  input→output response signature;
* :class:`FaultDictionary` — given observed (input, wrong output)
  evidence, return the candidate faults consistent with *all* of it;
* :func:`adaptive_probe` — pick the next input that best splits the
  remaining candidates (a greedy half-split), so a technician applies
  few probes.

Works on any combinational network, with the collapsed fault list from
:mod:`repro.core.collapse` as the natural candidate universe.
"""

from __future__ import annotations

import dataclasses
from typing import Dict, List, Optional, Sequence, Tuple

from ..logic.evaluate import line_tables
from ..logic.faults import Fault
from ..logic.network import Network


Signature = Tuple[int, ...]  # output-table bits per output


@dataclasses.dataclass(frozen=True)
class Candidate:
    """``fault is None`` is the *healthy* candidate: the hypothesis that
    the unit under diagnosis has no fault at all."""

    fault: Optional[Fault]
    signature: Signature


class FaultDictionary:
    """Response signatures of every candidate fault of one network."""

    def __init__(
        self,
        network: Network,
        faults: Sequence[Fault],
        include_healthy: bool = True,
    ) -> None:
        self.network = network
        self.normal: Signature = tuple(
            line_tables(network)[o].bits for o in network.outputs
        )
        self.candidates: List[Candidate] = []
        if include_healthy:
            self.candidates.append(Candidate(None, self.normal))
        for fault in faults:
            tables = line_tables(network, fault)
            signature = tuple(tables[o].bits for o in network.outputs)
            self.candidates.append(Candidate(fault, signature))

    # ------------------------------------------------------------------
    def response(self, candidate: Candidate, point: int) -> Tuple[int, ...]:
        return tuple(
            (bits >> point) & 1 for bits in candidate.signature
        )

    def normal_response(self, point: int) -> Tuple[int, ...]:
        return tuple((bits >> point) & 1 for bits in self.normal)

    def consistent(
        self, observations: Sequence[Tuple[int, Tuple[int, ...]]]
    ) -> List[Optional[Fault]]:
        """Candidates matching every observed (input point, outputs)."""
        survivors = []
        for candidate in self.candidates:
            if all(
                self.response(candidate, point) == tuple(outputs)
                for point, outputs in observations
            ):
                survivors.append(candidate.fault)
        return survivors

    def diagnose(
        self,
        faulty_outputs: "OutputOracle",
        max_probes: int = 16,
    ) -> Tuple[List[Optional[Fault]], List[int]]:
        """Adaptive diagnosis: probe inputs until the candidate set stops
        shrinking; returns (surviving faults, probes applied)."""
        observations: List[Tuple[int, Tuple[int, ...]]] = []
        survivors = list(self.candidates)
        probes: List[int] = []
        for _ in range(max_probes):
            point = adaptive_probe(self, survivors)
            if point is None:
                break
            outputs = faulty_outputs(point)
            probes.append(point)
            observations.append((point, outputs))
            survivors = [
                c
                for c in survivors
                if self.response(c, point) == tuple(outputs)
            ]
            if len(survivors) <= 1:
                break
        return [c.fault for c in survivors], probes


OutputOracle = "Callable[[int], Tuple[int, ...]]"


def adaptive_probe(
    dictionary: FaultDictionary, survivors: Sequence[Candidate]
) -> Optional[int]:
    """The input point whose responses best split the survivors.

    Greedy entropy-ish criterion: minimize the size of the largest
    response group.  Returns None when no input distinguishes anything.
    """
    if len(survivors) <= 1:
        return None
    n = len(dictionary.network.inputs)
    best_point: Optional[int] = None
    best_worst = len(survivors) + 1
    for point in range(1 << n):
        groups: Dict[Tuple[int, ...], int] = {}
        for candidate in survivors:
            key = dictionary.response(candidate, point)
            groups[key] = groups.get(key, 0) + 1
        if len(groups) < 2:
            continue
        worst = max(groups.values())
        if worst < best_worst:
            best_worst = worst
            best_point = point
    return best_point


def build_fault_dictionary(
    network: Network, collapse: bool = True
) -> FaultDictionary:
    """Dictionary over the (collapsed) single stem+pin fault universe."""
    if collapse:
        from .collapse import collapse_faults

        faults = list(collapse_faults(network, use_dominance=False).representatives)
    else:
        from ..logic.faults import enumerate_single_faults

        faults = enumerate_single_faults(network)
    return FaultDictionary(network, faults)


def simulate_faulty_unit(network: Network, fault: Fault):
    """An output oracle for a physically faulty unit (for tests/demos)."""
    tables = line_tables(network, fault)
    bits = tuple(tables[o].bits for o in network.outputs)

    def oracle(point: int) -> Tuple[int, ...]:
        return tuple((b >> point) & 1 for b in bits)

    return oracle
