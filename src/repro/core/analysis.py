"""Algorithm 3.1 — the thesis's self-checking design and analysis algorithm.

For an irredundant self-dual network (single or multiple output):

1. Regard each output as independent; for every line in its cone, accept
   the line if it passes one of the conditions A–E
   (:mod:`repro.core.conditions`).
2. A line from a subnetwork shared by more than one output that fails all
   of A–E for some output is re-examined under the relaxed multi-output
   condition (Corollary 3.2): its incorrect alternations must be
   accompanied by a nonalternating pair on another output.
3. If a line fails everything, the network is not self-checking.

The analyzer mirrors this exactly, records *which* condition admitted each
line (the data behind the thesis's Section 3.6 walkthrough), and can
cross-check its verdict against the brute-force oracle of
:mod:`repro.core.simulate` — they must agree on fault security for stem
faults, which the property tests assert.
"""

from __future__ import annotations

import dataclasses
from typing import Dict, Mapping, Optional, Set, Tuple

from ..logic.evaluate import line_tables
from ..logic.network import Network
from ..logic.paths import cone_subnetwork
from ..logic.truthtable import TruthTable
from .conditions import (
    Condition,
    ConditionEResult,
    condition_a,
    condition_b,
    condition_c,
    condition_d,
    condition_e,
    corollary_3_2,
)
from .redundancy import redundant_lines


@dataclasses.dataclass(frozen=True)
class LineVerdict:
    """Per-line outcome of Algorithm 3.1.

    ``admitted_by`` maps each output (whose cone contains the line) to the
    condition that admitted the line for that output, or ``None`` when the
    line failed everything for that output.
    """

    line: str
    admitted_by: Mapping[str, Optional[Condition]]
    e_failures: Mapping[str, ConditionEResult]

    @property
    def self_checking(self) -> bool:
        return all(cond is not None for cond in self.admitted_by.values())

    def failing_outputs(self) -> Tuple[str, ...]:
        return tuple(out for out, cond in self.admitted_by.items() if cond is None)


@dataclasses.dataclass(frozen=True)
class NetworkAnalysis:
    """Full outcome of Algorithm 3.1 on one network."""

    network: Network
    alternating: bool
    redundant: Tuple[str, ...]
    lines: Mapping[str, LineVerdict]

    @property
    def is_self_checking(self) -> bool:
        """SCAL verdict: alternating, irredundant, every line admitted."""
        if not self.alternating or self.redundant:
            return False
        return all(v.self_checking for v in self.lines.values())

    def failing_lines(self) -> Tuple[str, ...]:
        return tuple(
            line for line, v in self.lines.items() if not v.self_checking
        )

    def condition_histogram(self) -> Dict[Condition, int]:
        """How many (line, output) admissions each condition supplied —
        the shape of the Section 3.6 walkthrough."""
        hist: Dict[Condition, int] = {}
        for verdict in self.lines.values():
            for cond in verdict.admitted_by.values():
                if cond is not None:
                    hist[cond] = hist.get(cond, 0) + 1
        return hist

    def summary(self) -> str:
        status = "SELF-CHECKING" if self.is_self_checking else "NOT self-checking"
        out = [f"Algorithm 3.1 on {self.network.name}: {status}"]
        if not self.alternating:
            out.append("  network is not alternating (some output not self-dual)")
        if self.redundant:
            out.append(f"  redundant lines: {', '.join(self.redundant)}")
        hist = self.condition_histogram()
        if hist:
            parts = ", ".join(
                f"{cond.value}: {count}" for cond, count in sorted(
                    hist.items(), key=lambda item: item[0].value
                )
            )
            out.append(f"  admissions by condition -> {parts}")
        failing = self.failing_lines()
        if failing:
            for line in failing:
                verdict = self.lines[line]
                outs = ", ".join(verdict.failing_outputs())
                out.append(f"  line {line}: fails for output(s) {outs}")
        return "\n".join(out)


def analyze_network(
    network: Network,
    check_redundancy: bool = True,
    use_multi_output: bool = True,
) -> NetworkAnalysis:
    """Run Algorithm 3.1 on ``network``.

    ``check_redundancy=False`` skips the Theorem 3.4 sweep when the caller
    already knows the network is irredundant (it is the costliest step for
    big netlists).  ``use_multi_output=False`` disables the Corollary 3.2
    relaxation — useful for demonstrating exactly which lines *need* it
    (lines 9 and 19 of the thesis's Figure 3.4 example).
    """
    tables = line_tables(network)
    alternating = all(tables[out].is_self_dual() for out in network.outputs)
    redundant: Tuple[str, ...] = ()
    if check_redundancy:
        redundant = tuple(redundant_lines(network))

    cones: Dict[str, Network] = {}
    cone_sets: Dict[str, Set[str]] = {}
    for out in network.outputs:
        cones[out] = cone_subnetwork(network, out)
        cone_sets[out] = set(cones[out].lines())

    shared_count: Dict[str, int] = {}
    for line in network.lines():
        shared_count[line] = sum(1 for out in network.outputs if line in cone_sets[out])

    verdicts: Dict[str, LineVerdict] = {}
    for line in network.lines():
        admitted: Dict[str, Optional[Condition]] = {}
        e_failures: Dict[str, ConditionEResult] = {}
        for out in network.outputs:
            if line not in cone_sets[out]:
                continue
            if line == out:
                # The output stem itself: a stuck output is nonalternating
                # for every pair, hence always detected (condition A view:
                # a self-dual output alternates).
                admitted[out] = Condition.A_ALTERNATES
                continue
            cond = _admit_single_output(
                network, cones[out], tables, line, out
            )
            if cond is not None:
                admitted[out] = cond
                continue
            e_res = condition_e(network, line, out, tables)
            if e_res.holds:
                admitted[out] = Condition.E_COROLLARY_3_1
                continue
            e_failures[out] = e_res
            if (
                use_multi_output
                and shared_count[line] > 1
                and corollary_3_2(network, line, out, e_res, tables)
            ):
                admitted[out] = Condition.MULTI_OUTPUT
            else:
                admitted[out] = None
        verdicts[line] = LineVerdict(line, admitted, e_failures)
    return NetworkAnalysis(
        network=network,
        alternating=alternating,
        redundant=redundant,
        lines=verdicts,
    )


def _admit_single_output(
    network: Network,
    cone: Network,
    tables: Dict[str, TruthTable],
    line: str,
    out: str,
) -> Optional[Condition]:
    """Conditions A–D in the thesis's order (cheapest screens first)."""
    if condition_a(tables, line):
        return Condition.A_ALTERNATES
    if condition_b(cone, line, out):
        return Condition.B_NO_FANOUT_UNATE
    if condition_c(cone, line, out):
        return Condition.C_EQUAL_PARITY
    if condition_d(network, tables, line, cone_lines=set(cone.lines())):
        return Condition.D_STANDARD_GATE
    return None


def lines_needing_multi_output(analysis: NetworkAnalysis) -> Tuple[str, ...]:
    """Lines admitted only via Corollary 3.2 for at least one output —
    the thesis's "lines 9 and 19" class in the Figure 3.4 example."""
    needy = []
    for line, verdict in analysis.lines.items():
        if any(c is Condition.MULTI_OUTPUT for c in verdict.admitted_by.values()):
            needy.append(line)
    return tuple(needy)
