"""The SCAL oracle: exhaustive fault simulation under alternating operation.

Definition 2.4 (self-checking) and Theorem 2.2 (its alternating-logic
form) are the ground truth every analytic condition of Chapter 3 is
screened against.  This module evaluates them *directly*: for every input
pair ``(X, X̄)`` and every fault, classify each output pair as

* **correct** — equals the fault-free alternating pair,
* **nonalternating** — the two period values are equal; the checker flags
  it, the fault is *detected*,
* **incorrect alternating** — the pair alternates but is wrong; the fault
  slips through undetected.  This is the fault-secure violation of
  Theorem 3.1 (marked ``*`` in the thesis's Figure 3.6).

Everything is computed word-parallel on truth-table bitmasks: a "set of
input points" is one integer, and pair-level properties are obtained with
:meth:`TruthTable.co_reflect` (the ``X → X̄`` index permutation).
"""

from __future__ import annotations

import dataclasses
from typing import Dict, Iterable, List, Optional, Sequence, Tuple, Union

from ..engine import FaultSweep
from ..logic.evaluate import line_tables
from ..logic.faults import Fault, MultipleFault
from ..logic.network import Network
from ..logic.truthtable import TruthTable

FaultLike = Union[Fault, MultipleFault]


def _pair_close(table: TruthTable) -> TruthTable:
    """Close a point set under the pairing ``X ↔ X̄``.

    A point is in the result iff it or its complement is in the input —
    the right notion for "the pair anchored at X has property P".
    """
    return table | table.co_reflect()


@dataclasses.dataclass(frozen=True)
class FaultResponse:
    """Pair-level response of one network to one fault.

    All masks are pair-symmetric point sets over the input space:

    * ``affected`` — pairs where some output differs from fault-free,
    * ``detected`` — pairs where some output is nonalternating,
    * ``violations`` — pairs where some output is wrong yet *every*
      output alternates (the undetected-error case).
    """

    fault: FaultLike
    affected: TruthTable
    detected: TruthTable
    violations: TruthTable

    @property
    def is_self_testing(self) -> bool:
        """Revised Definition 2.4(a): the fault changes the output
        sequence for some input (Smith's form, as adopted in Section 2.2)."""
        return not self.affected.is_zero()

    @property
    def is_detected(self) -> bool:
        """Some input pair yields a nonalternating (noncode) output."""
        return not self.detected.is_zero()

    @property
    def is_fault_secure(self) -> bool:
        """Definition 2.4(b): no code input maps to a *wrong code* output,
        i.e. no incorrect-alternating pair survives undetected."""
        return self.violations.is_zero()

    @property
    def is_self_checking(self) -> bool:
        return self.is_self_testing and self.is_fault_secure

    def violation_pairs(self) -> List[Tuple[int, int]]:
        """Canonical ``(X, X̄)`` index pairs of undetected wrong outputs."""
        return canonical_pairs(self.violations)


def canonical_pairs(mask: TruthTable) -> List[Tuple[int, int]]:
    """Each pair-symmetric mask point once, as ``(min, max)`` index pairs."""
    full = (1 << mask.n) - 1
    seen = set()
    pairs = []
    for point in mask.minterms():
        key = (min(point, point ^ full), max(point, point ^ full))
        if key not in seen:
            seen.add(key)
            pairs.append(key)
    return pairs


class ScalSimulator:
    """Exhaustive SCAL fault simulation of one combinational network.

    Backed by the compiled engine (:mod:`repro.engine`): the netlist is
    compiled once, the fault-free baseline is cached, and each
    :meth:`response` call re-simulates only the fault's output cone.
    """

    def __init__(self, network: Network) -> None:
        self.network = network
        self._sweep = FaultSweep(network)
        self.normal = line_tables(network)
        self._normal_out = {out: self.normal[out] for out in network.outputs}

    def response(self, fault: FaultLike) -> FaultResponse:
        bits = self._sweep.response_bits(fault)
        n = len(self.network.inputs)
        return FaultResponse(
            fault,
            TruthTable(n, bits.affected),
            TruthTable(n, bits.detected),
            TruthTable(n, bits.violations),
        )

    def responses(self, faults: Iterable[FaultLike]) -> List[FaultResponse]:
        return [self.response(f) for f in faults]

    # ------------------------------------------------------------------
    # network-level verdicts
    # ------------------------------------------------------------------
    def single_fault_universe(
        self, include_inputs: bool = True, include_pins: bool = True
    ) -> List[Fault]:
        """All single faults on lines that can reach some output.

        Unconnected primary inputs and dead gates are not lines of the
        network in the thesis's sense (nothing reads them), so their
        trivially untestable faults are excluded from the sweep.
        """
        return self._sweep.single_fault_universe(include_inputs, include_pins)

    def verdict(
        self,
        faults: Optional[Sequence[FaultLike]] = None,
        include_inputs: bool = True,
        include_pins: bool = True,
    ) -> "ScalVerdict":
        """Self-checking verdict over a fault universe (default: all
        single stem+pin stuck-at faults, Definition 2.1)."""
        universe: Sequence[FaultLike]
        if faults is None:
            universe = self.single_fault_universe(include_inputs, include_pins)
        else:
            universe = list(faults)
        insecure: List[FaultResponse] = []
        untestable: List[FaultResponse] = []
        for fault in universe:
            resp = self.response(fault)
            if not resp.is_fault_secure:
                insecure.append(resp)
            elif not resp.is_self_testing:
                untestable.append(resp)
        return ScalVerdict(
            network=self.network,
            fault_count=len(universe),
            insecure=tuple(insecure),
            untestable=tuple(untestable),
        )

    def is_alternating(self) -> bool:
        """Theorem 2.1: every output self-dual."""
        return all(t.is_self_dual() for t in self._normal_out.values())

    def line_self_checking(self, line: str) -> bool:
        """The thesis's per-line phrasing: both stem stuck-ats on ``line``
        are fault-secure (and self-testing unless the line is redundant)."""
        from ..logic.faults import StuckAt

        for value in (0, 1):
            resp = self.response(StuckAt(line, value))
            if not resp.is_fault_secure:
                return False
        return True


@dataclasses.dataclass(frozen=True)
class ScalVerdict:
    """Outcome of a full single-fault SCAL sweep."""

    network: Network
    fault_count: int
    insecure: Tuple[FaultResponse, ...]
    untestable: Tuple[FaultResponse, ...]

    @property
    def is_self_checking(self) -> bool:
        """Self-checking over the swept universe: every fault is fault
        secure, and every fault is self-testing (untestable faults sit on
        redundant lines, which Theorem 3.5's irredundancy premise
        excludes)."""
        return not self.insecure and not self.untestable

    @property
    def is_fault_secure(self) -> bool:
        return not self.insecure

    def insecure_lines(self) -> List[str]:
        """Stem names whose faults break fault security (pin faults are
        reported as ``gate.pinK``)."""
        names = []
        for resp in self.insecure:
            names.append(resp.fault.describe())
        return names

    def summary(self) -> str:
        status = "SELF-CHECKING" if self.is_self_checking else "NOT self-checking"
        lines = [
            f"{self.network.name}: {status} "
            f"({self.fault_count} single faults swept)"
        ]
        if self.insecure:
            lines.append("  fault-secure violations:")
            for resp in self.insecure:
                pairs = resp.violation_pairs()
                lines.append(
                    f"    {resp.fault.describe()} -> undetected wrong output "
                    f"on pairs {pairs}"
                )
        if self.untestable:
            lines.append("  untestable (redundant-line) faults:")
            for resp in self.untestable:
                lines.append(f"    {resp.fault.describe()}")
        return "\n".join(lines)


def is_scal_network(
    network: Network,
    include_inputs: bool = True,
    include_pins: bool = True,
) -> bool:
    """Definition 2.6 end-to-end: alternating (self-dual outputs) *and*
    self-checking for all single stuck-at faults."""
    sim = ScalSimulator(network)
    if not sim.is_alternating():
        return False
    return sim.verdict(
        include_inputs=include_inputs, include_pins=include_pins
    ).is_self_checking


def fault_coverage(
    network: Network,
    faults: Optional[Sequence[FaultLike]] = None,
    collapse: bool = True,
    processes: Optional[int] = None,
    backend: str = "auto",
) -> Dict[str, float]:
    """Coverage statistics for the merits discussion (Section 2.4).

    Returns the fraction of swept faults that are detected (some pair
    nonalternating), secure-but-silent (never affect the output), and
    dangerous (produce an undetected wrong output for some pair).

    When no explicit fault list is given the default single-fault
    universe is structurally collapsed (one representative per
    equivalence class, :mod:`repro.core.collapse`) — equivalent faults
    have identical faulty functions, so per-class classification is
    unchanged while the sweep shrinks.  Pass ``collapse=False`` for the
    raw universe; ``processes`` fans the sweep across fork workers;
    ``backend`` picks the sweep execution backend (``auto`` applies the
    :func:`repro.engine.select_backend` heuristic).
    """
    sweep = FaultSweep(network)
    if faults is not None:
        universe: List[FaultLike] = list(faults)
    elif collapse:
        from .collapse import collapsed_single_faults

        universe = list(collapsed_single_faults(network))
    else:
        universe = sweep.single_fault_universe()
    return sweep.coverage(universe, processes=processes, backend=backend)
