"""Conditions A–E of Algorithm 3.1, plus the Corollary 3.2 relaxation.

These are the paper's per-line screens for "the network is self-checking
with respect to line g" in an irredundant self-dual network:

* **A** — the line alternates for every input pair (Theorem 3.6); in
  table form, the line's function is self-dual.
* **B** — the line does not fan out on its way to the output and every
  gate on the path is unate (Theorem 3.7).
* **C** — all paths from the line to the output have equal parity
  (Theorem 3.8).
* **D** — the line feeds a standard gate together with an alternating
  line (Theorem 3.9).  Soundness note: the theorem's argument covers the
  fault's propagation *through that gate*; we therefore require the line
  to feed only that gate (no other fanout within the output's cone), the
  same restriction under which the theorem's proof is airtight.  Lines
  with wider fanout fall through to condition E, which is exact.
* **E** — the exact check of Corollary 3.1: no stuck-at value produces an
  incorrect alternating output pair.

Conditions A–D are *sufficient* screens computed structurally or from
fault-free tables only; condition E (and the multi-output Corollary 3.2)
are exact and need the two faulty evaluations of the line.
"""

from __future__ import annotations

import dataclasses
import enum
from typing import Dict, Optional, Tuple

from ..engine import engine_for
from ..logic.evaluate import line_tables
from ..logic.faults import StuckAt
from ..logic.gates import DOMINANT_VALUE
from ..logic.network import Network
from ..logic.paths import condition_b_holds, condition_c_holds
from ..logic.truthtable import TruthTable


class Condition(enum.Enum):
    """Which screen of Algorithm 3.1 admitted a line."""

    A_ALTERNATES = "A"
    B_NO_FANOUT_UNATE = "B"
    C_EQUAL_PARITY = "C"
    D_STANDARD_GATE = "D"
    E_COROLLARY_3_1 = "E"
    MULTI_OUTPUT = "3.2"  # Corollary 3.2 relaxation

    def __str__(self) -> str:  # pragma: no cover - cosmetic
        return self.value


def condition_a(tables: Dict[str, TruthTable], line: str) -> bool:
    """Theorem 3.6: the line's value alternates for all input pairs."""
    return tables[line].is_self_dual()


def condition_b(cone: Network, line: str, output: str) -> bool:
    """Theorem 3.7 on the output's cone subnetwork."""
    return condition_b_holds(cone, line, output)


def condition_c(cone: Network, line: str, output: str) -> bool:
    """Theorem 3.8 on the output's cone subnetwork."""
    return condition_c_holds(cone, line, output)


def condition_d(
    network: Network,
    tables: Dict[str, TruthTable],
    line: str,
    cone_lines: Optional[set] = None,
) -> bool:
    """Theorem 3.9 with the single-destination soundness restriction.

    ``cone_lines`` limits the fanout view to one output's cone (pass the
    cone of the output under analysis for per-output screening).
    """
    destinations = [
        dest
        for dest in network.fanout(line)
        if cone_lines is None or dest in cone_lines
    ]
    if len(destinations) != 1:
        return False
    gate = network.gate(destinations[0])
    if gate.inputs.count(line) != 1:
        return False
    if gate.kind not in DOMINANT_VALUE:
        return False  # standard *multi-input* gates only; NOT has no co-input
    for other in gate.inputs:
        if other == line:
            continue
        if tables[other].is_self_dual():
            return True
    return False


@dataclasses.dataclass(frozen=True)
class ConditionEResult:
    """Outcome of the exact Corollary 3.1 check for one line and output."""

    holds: bool
    #: pair-symmetric masks of incorrect-alternating points, per stuck value
    violations_s0: TruthTable
    violations_s1: TruthTable

    def violating_points(self) -> Dict[int, Tuple[int, ...]]:
        return {
            0: tuple(self.violations_s0.minterms()),
            1: tuple(self.violations_s1.minterms()),
        }


def condition_e(
    network: Network,
    line: str,
    output: str,
    normal_tables: Optional[Dict[str, TruthTable]] = None,
) -> ConditionEResult:
    """Corollary 3.1, exactly, in bitmask form.

    An incorrect alternating output for ``g`` stuck-at ``s`` at the pair
    anchored at ``X`` is ``[F(X) ≠ F_f(X)] & [F_f(X̄) = ¬F_f(X)]``; using
    ``F(X̄) = ¬F(X)`` (self-dual normal operation) this is the mask
    ``(T ⊕ T_f) & ¬(T ⊕ T_f∘reflect)``.  Condition E holds iff both stuck
    values give the empty mask.
    """
    tables = normal_tables if normal_tables is not None else line_tables(network)
    t_normal = tables[output]
    engine = engine_for(network)
    out_idx = engine.compiled.index[output]
    n = engine.compiled.n_inputs
    masks = []
    for value in (0, 1):
        faulty_bits = engine.bitmask.line_bits(StuckAt(line, value))
        t_fault = TruthTable(n, faulty_bits[out_idx], t_normal.names)
        wrong = t_normal ^ t_fault
        agrees_with_normal_pairing = ~(t_normal ^ t_fault.co_reflect())
        masks.append(wrong & agrees_with_normal_pairing)
    return ConditionEResult(
        holds=masks[0].is_zero() and masks[1].is_zero(),
        violations_s0=masks[0],
        violations_s1=masks[1],
    )


def corollary_3_1_formula(
    network: Network,
    line: str,
    output: str,
    normal_tables: Optional[Dict[str, TruthTable]] = None,
) -> bool:
    """The literal textbook formula of Corollary 3.1, kept as an
    independent implementation for cross-validation in the test suite:

        F̄(X,G(X)) & [F(X,0) & F̄(X̄,0) ∨ F(X,1) & F̄(X̄,1)] = 0

    where ``F̄(X̄,s)`` is the complement of the faulty output at the
    complemented input.  The single product per stuck value suffices
    because, with all pairs applied, a violation whose first-period value
    is 1 appears as this product at the complemented anchor (the symmetry
    argument closing Section 3.2).
    """
    tables = normal_tables if normal_tables is not None else line_tables(network)
    t_normal = tables[output]
    engine = engine_for(network)
    out_idx = engine.compiled.index[output]
    n = engine.compiled.n_inputs
    for value in (0, 1):
        faulty_bits = engine.bitmask.line_bits(StuckAt(line, value))
        t_fault = TruthTable(n, faulty_bits[out_idx], t_normal.names)
        product = (~t_normal) & t_fault & ~(t_fault.co_reflect())
        if not product.is_zero():
            return False
    return True


def corollary_3_2(
    network: Network,
    line: str,
    output: str,
    e_result: ConditionEResult,
    normal_tables: Optional[Dict[str, TruthTable]] = None,
) -> bool:
    """The multiple-output relaxation (Definition 3.3 / Corollary 3.2).

    Every input pair where ``output`` alternates incorrectly under a
    fault on ``line`` must make some *other* output nonalternating for
    the same pair — then the checker still catches the fault.
    """
    for value, violations in ((0, e_result.violations_s0), (1, e_result.violations_s1)):
        if violations.is_zero():
            continue
        faulty = line_tables(network, StuckAt(line, value))
        protected = TruthTable(violations.n, 0)
        for other in network.outputs:
            if other == output:
                continue
            t_fault = faulty[other]
            nonalternating = ~(t_fault ^ t_fault.co_reflect())
            protected = protected | nonalternating
        uncovered = violations & ~protected
        if not uncovered.is_zero():
            return False
    return True
