"""The paper's primary contribution: SCAL self-checking analysis.

* :mod:`repro.core.simulate` — the exhaustive SCAL oracle (Definition 2.4
  / Theorem 2.2 evaluated directly).
* :mod:`repro.core.conditions` — conditions A–E and Corollary 3.2.
* :mod:`repro.core.analysis` — Algorithm 3.1.
* :mod:`repro.core.testgen` — Theorem 3.2 test generation.
* :mod:`repro.core.redundancy` — Theorems 3.3–3.5 redundancy handling.
* :mod:`repro.core.report` — Figure 3.6-style fault tables.
"""

from .atpg import Podem, structural_test_summary
from .collapse import CollapseReport, collapse_faults, equivalence_collapse
from .diagnosis import FaultDictionary, adaptive_probe, build_fault_dictionary, simulate_faulty_unit
from .design import (
    RepairReport,
    RepairStep,
    design_scal_network,
    duplicate_gate_for_branches,
    make_self_checking,
)
from .multifault import (
    ClassCoverage,
    coverage_by_class,
    double_faults,
    random_multiple_faults,
    render_coverage,
    unidirectional_faults,
)
from .analysis import (
    LineVerdict,
    NetworkAnalysis,
    analyze_network,
    lines_needing_multi_output,
)
from .conditions import (
    Condition,
    ConditionEResult,
    condition_a,
    condition_b,
    condition_c,
    condition_d,
    condition_e,
    corollary_3_1_formula,
    corollary_3_2,
)
from .redundancy import (
    apply_constant_replacements,
    constant_replacements,
    is_irredundant,
    line_testability,
    redundant_lines,
)
from .report import (
    FaultTableRow,
    fault_table,
    input_pairs,
    pair_label,
    render_fault_table,
    undetected_faults,
)
from .simulate import (
    FaultResponse,
    ScalSimulator,
    ScalVerdict,
    canonical_pairs,
    fault_coverage,
    is_scal_network,
)
from .testgen import (
    StuckAtTestPlan,
    all_test_pairs,
    format_pair,
    greedy_test_schedule,
    test_plan,
)

__all__ = [
    "ClassCoverage",
    "CollapseReport",
    "FaultDictionary",
    "adaptive_probe",
    "build_fault_dictionary",
    "simulate_faulty_unit",
    "Podem",
    "collapse_faults",
    "equivalence_collapse",
    "structural_test_summary",
    "Condition",
    "RepairReport",
    "RepairStep",
    "ConditionEResult",
    "FaultResponse",
    "FaultTableRow",
    "LineVerdict",
    "NetworkAnalysis",
    "ScalSimulator",
    "ScalVerdict",
    "StuckAtTestPlan",
    "all_test_pairs",
    "analyze_network",
    "apply_constant_replacements",
    "canonical_pairs",
    "coverage_by_class",
    "design_scal_network",
    "double_faults",
    "duplicate_gate_for_branches",
    "make_self_checking",
    "random_multiple_faults",
    "render_coverage",
    "unidirectional_faults",
    "condition_a",
    "condition_b",
    "condition_c",
    "condition_d",
    "condition_e",
    "constant_replacements",
    "corollary_3_1_formula",
    "corollary_3_2",
    "fault_coverage",
    "fault_table",
    "format_pair",
    "greedy_test_schedule",
    "input_pairs",
    "is_irredundant",
    "is_scal_network",
    "line_testability",
    "lines_needing_multi_output",
    "pair_label",
    "redundant_lines",
    "render_fault_table",
    "test_plan",
    "undetected_faults",
]
