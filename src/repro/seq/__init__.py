"""Sequential-machine substrate: state tables, flip-flops, clocked
simulation, state assignment, and Kohavi-style synthesis."""

from .dff import DelayChain, DFlipFlop, Register
from .encoding import (
    StateEncoding,
    binary_encoding,
    gray_encoding,
    minimum_width,
    one_hot_encoding,
)
from .minimize import equivalence_classes, is_minimal, minimize_machine
from .stg import (
    distinguishing_sequence,
    homing_identifies_state,
    homing_sequence,
    prune_unreachable,
    render_stg_dot,
)
from .machine import StateTable, StateTableError, Transition, single_input_table
from .simulator import FlipFlopFault, SequentialCircuit
from .synthesis import SynthesizedMachine, machine_tables, synthesize_machine

__all__ = [
    "DFlipFlop",
    "DelayChain",
    "FlipFlopFault",
    "Register",
    "SequentialCircuit",
    "StateEncoding",
    "StateTable",
    "StateTableError",
    "SynthesizedMachine",
    "Transition",
    "binary_encoding",
    "distinguishing_sequence",
    "equivalence_classes",
    "homing_identifies_state",
    "homing_sequence",
    "prune_unreachable",
    "render_stg_dot",
    "is_minimal",
    "minimize_machine",
    "gray_encoding",
    "machine_tables",
    "minimum_width",
    "one_hot_encoding",
    "single_input_table",
    "synthesize_machine",
]
