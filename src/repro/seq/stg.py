"""State-transition-graph utilities for Mealy machines.

Supporting tools around :class:`StateTable`:

* DOT export for drawing the machine (pairs with the netlist renderer);
* reachability pruning — unreachable states waste flip-flops and create
  don't-care codes the synthesis could otherwise exploit;
* **homing sequences** — an input sequence whose output response
  identifies the final state.  The thesis's fault model "assume[s] that
  the network is free of faults when it is initially used"; after a
  transient upset, applying a homing sequence re-establishes a known
  state so alternating operation can resume (the recovery step the
  Figure 5.7 latched-status design implies);
* **distinguishing pairs** — the refinement witnesses behind state
  minimization, exposed for diagnosis.
"""

from __future__ import annotations

from typing import Dict, FrozenSet, List, Optional, Sequence, Set, Tuple

from .machine import InputVector, StateTable


def render_stg_dot(machine: StateTable, title: Optional[str] = None) -> str:
    """Graphviz DOT source of the state-transition graph."""
    lines = ["digraph stg {", "  rankdir=LR;"]
    lines.append(f'  label="{title or machine.name}";')
    lines.append(
        f'  "__start" [shape=point]; "__start" -> "{machine.initial_state}";'
    )
    for state in machine.states:
        lines.append(f'  "{state}" [shape=circle];')
    for state in machine.states:
        for vector in machine.input_vectors():
            t = machine.transition(state, vector)
            in_label = "".join(map(str, vector))
            out_label = "".join(map(str, t.output))
            lines.append(
                f'  "{state}" -> "{t.next_state}" '
                f'[label="{in_label}/{out_label}"];'
            )
    lines.append("}")
    return "\n".join(lines)


def prune_unreachable(machine: StateTable) -> StateTable:
    """Drop states unreachable from the initial state."""
    reachable = set(machine.reachable_states())
    if reachable == set(machine.states):
        return machine
    states = [s for s in machine.states if s in reachable]
    table = {
        state: {
            vector: (
                machine.transition(state, vector).next_state,
                machine.transition(state, vector).output,
            )
            for vector in machine.input_vectors()
        }
        for state in states
    }
    return StateTable(
        states,
        machine.n_inputs,
        machine.n_outputs,
        table,
        machine.initial_state,
        name=f"{machine.name}_pruned",
    )


def distinguishing_sequence(
    machine: StateTable, a: str, b: str, max_length: int = 8
) -> Optional[List[InputVector]]:
    """A shortest input sequence whose outputs differ from states a, b
    (None when the states are equivalent within the length bound)."""
    if a == b:
        return None
    frontier: List[Tuple[str, str, List[InputVector]]] = [(a, b, [])]
    seen: Set[Tuple[str, str]] = {(a, b)}
    while frontier:
        next_frontier = []
        for sa, sb, prefix in frontier:
            if len(prefix) >= max_length:
                continue
            for vector in machine.input_vectors():
                ta = machine.transition(sa, vector)
                tb = machine.transition(sb, vector)
                path = prefix + [vector]
                if ta.output != tb.output:
                    return path
                key = (ta.next_state, tb.next_state)
                if key not in seen and ta.next_state != tb.next_state:
                    seen.add(key)
                    next_frontier.append((ta.next_state, tb.next_state, path))
        frontier = next_frontier
    return None


def homing_sequence(
    machine: StateTable, max_length: int = 12
) -> Optional[List[InputVector]]:
    """An input sequence after which the observed outputs determine the
    final state (every minimal machine has one).

    Search over *current-state uncertainty* partitions: start with all
    states in one block; an input splits blocks by output and maps them
    to successor sets; done when every block is a singleton.
    """
    initial: FrozenSet[FrozenSet[str]] = frozenset(
        {frozenset(machine.states)}
    )

    def apply(partition, vector):
        new_blocks: Set[FrozenSet[str]] = set()
        for block in partition:
            groups: Dict[Tuple, Set[str]] = {}
            for state in block:
                t = machine.transition(state, vector)
                groups.setdefault(t.output, set()).add(t.next_state)
            for successors in groups.values():
                new_blocks.add(frozenset(successors))
        return frozenset(new_blocks)

    def solved(partition):
        return all(len(block) == 1 for block in partition)

    frontier: List[Tuple[FrozenSet[FrozenSet[str]], List[InputVector]]] = [
        (initial, [])
    ]
    seen = {initial}
    while frontier:
        next_frontier = []
        for partition, prefix in frontier:
            if solved(partition):
                return prefix
            if len(prefix) >= max_length:
                continue
            for vector in machine.input_vectors():
                nxt = apply(partition, vector)
                if nxt not in seen:
                    seen.add(nxt)
                    next_frontier.append((nxt, prefix + [vector]))
        frontier = next_frontier
    return None


def final_state_after_homing(
    machine: StateTable,
    start_state: str,
    sequence: Sequence[InputVector],
) -> Tuple[str, Tuple[Tuple[int, ...], ...]]:
    """Run a homing sequence from an (unknown to the observer) start
    state; return the final state and the observed output response."""
    current = start_state
    outputs = []
    for vector in sequence:
        current, out = machine.step(current, vector)
        outputs.append(out)
    return current, tuple(outputs)


def homing_identifies_state(machine: StateTable, sequence: Sequence[InputVector]) -> bool:
    """Verify the homing property: equal responses imply equal final
    states, over every possible start state."""
    by_response: Dict[Tuple, Set[str]] = {}
    for start in machine.states:
        final, response = final_state_after_homing(machine, start, sequence)
        by_response.setdefault(response, set()).add(final)
    return all(len(finals) == 1 for finals in by_response.values())
