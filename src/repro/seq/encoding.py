"""State assignment: mapping symbolic states to flip-flop code words."""

from __future__ import annotations

import dataclasses
import math
from typing import Mapping, Sequence, Tuple


@dataclasses.dataclass(frozen=True)
class StateEncoding:
    """A binary state assignment.

    ``codes[state]`` is a little-endian bit tuple (bit *i* drives state
    variable ``y_i``).  Unused code words become synthesis don't-cares.
    """

    codes: Mapping[str, Tuple[int, ...]]
    width: int

    def code(self, state: str) -> Tuple[int, ...]:
        return self.codes[state]

    def decode(self, bits: Sequence[int]) -> str:
        key = tuple(int(b) & 1 for b in bits)
        for state, code in self.codes.items():
            if code == key:
                return state
        raise KeyError(f"no state with code {key}")

    def used_points(self) -> Tuple[int, ...]:
        return tuple(
            sum(bit << i for i, bit in enumerate(code))
            for code in self.codes.values()
        )

    def unused_points(self) -> Tuple[int, ...]:
        used = set(self.used_points())
        return tuple(p for p in range(1 << self.width) if p not in used)


def minimum_width(n_states: int) -> int:
    return max(1, math.ceil(math.log2(max(n_states, 1))))


def binary_encoding(states: Sequence[str], width: int = None) -> StateEncoding:
    """Index-order binary assignment (the textbook default)."""
    w = width if width is not None else minimum_width(len(states))
    if (1 << w) < len(states):
        raise ValueError("width too small for the state count")
    codes = {
        state: tuple((index >> b) & 1 for b in range(w))
        for index, state in enumerate(states)
    }
    return StateEncoding(codes, w)


def gray_encoding(states: Sequence[str], width: int = None) -> StateEncoding:
    """Gray-code assignment — adjacent state indices differ in one bit,
    which tends to reduce product terms in the next-state logic."""
    w = width if width is not None else minimum_width(len(states))
    if (1 << w) < len(states):
        raise ValueError("width too small for the state count")
    codes = {}
    for index, state in enumerate(states):
        gray = index ^ (index >> 1)
        codes[state] = tuple((gray >> b) & 1 for b in range(w))
    return StateEncoding(codes, w)


def one_hot_encoding(states: Sequence[str]) -> StateEncoding:
    """One flip-flop per state; expensive but simple next-state logic."""
    w = len(states)
    codes = {
        state: tuple(1 if i == index else 0 for i in range(w))
        for index, state in enumerate(states)
    }
    return StateEncoding(codes, w)
