"""State minimization for completely specified Mealy machines.

The Kohavi-style synthesis flow the thesis assumes (Chapter 4) starts
from a *reduced* state table; this is the classical partition-refinement
minimizer: states are first grouped by their output rows, then blocks
are split until every pair of same-block states sends each input to the
same block.  The reduced machine is equivalent by construction and the
tests verify it on random streams.
"""

from __future__ import annotations

from typing import Dict, List, Tuple

from .machine import StateTable


def equivalence_classes(machine: StateTable) -> List[Tuple[str, ...]]:
    """Blocks of pairwise-equivalent states (Moore/Hopcroft refinement)."""
    vectors = machine.input_vectors()
    # Initial partition: identical output rows.
    block_of: Dict[str, int] = {}
    signature: Dict[Tuple, int] = {}
    for state in machine.states:
        sig = tuple(machine.transition(state, v).output for v in vectors)
        block_of[state] = signature.setdefault(sig, len(signature))

    while True:
        refined_signature: Dict[Tuple, int] = {}
        refined: Dict[str, int] = {}
        for state in machine.states:
            sig = (
                block_of[state],
                tuple(
                    block_of[machine.transition(state, v).next_state]
                    for v in vectors
                ),
            )
            refined[state] = refined_signature.setdefault(sig, len(refined_signature))
        if len(refined_signature) == len(signature):
            block_of = refined
            break
        block_of = refined
        signature = refined_signature

    blocks: Dict[int, List[str]] = {}
    for state in machine.states:
        blocks.setdefault(block_of[state], []).append(state)
    return [tuple(members) for _idx, members in sorted(blocks.items())]


def minimize_machine(machine: StateTable) -> StateTable:
    """The reduced machine (one representative state per block)."""
    blocks = equivalence_classes(machine)
    representative: Dict[str, str] = {}
    for block in blocks:
        for state in block:
            representative[state] = block[0]
    new_states = [block[0] for block in blocks]
    table: Dict[str, Dict[Tuple[int, ...], Tuple[str, Tuple[int, ...]]]] = {}
    for state in new_states:
        row = {}
        for vector in machine.input_vectors():
            t = machine.transition(state, vector)
            row[vector] = (representative[t.next_state], t.output)
        table[state] = row
    return StateTable(
        new_states,
        machine.n_inputs,
        machine.n_outputs,
        table,
        representative[machine.initial_state],
        name=f"{machine.name}_min",
    )


def is_minimal(machine: StateTable) -> bool:
    return len(equivalence_classes(machine)) == len(machine.states)
