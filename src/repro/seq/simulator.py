"""Clocked simulation of gate-level sequential circuits.

A :class:`SequentialCircuit` is the Figure 4.1a model made executable: a
combinational :class:`~repro.logic.network.Network` whose inputs include
the present-state lines, plus a feedback map *next-state output line →
present-state input line* realized with D delay chains.  ``depth=1``
gives the standard machine; ``depth=2`` gives the dual flip-flop
alternating machine of Figure 4.2a.

Faults can be injected persistently into the combinational network (any
stem/pin stuck-at) or onto a flip-flop output — the fault lives for the
whole simulated run, matching the permanent single-fault model.
"""

from __future__ import annotations

import dataclasses
from typing import Dict, Iterable, List, Mapping, Optional, Tuple, Union

from ..engine import engine_for
from ..logic.faults import Fault, MultipleFault
from ..logic.network import Network
from .dff import DelayChain

FaultLike = Union[Fault, MultipleFault]


@dataclasses.dataclass(frozen=True)
class FlipFlopFault:
    """The output of the ``index``-th stage of one feedback chain stuck."""

    state_line: str
    stage: int
    value: int

    def describe(self) -> str:
        return f"ff[{self.state_line}#{self.stage}] s/{self.value}"


class SequentialCircuit:
    """A combinational network closed through D flip-flop chains."""

    def __init__(
        self,
        network: Network,
        feedback: Mapping[str, str],
        depth: int = 1,
        initial_state: Optional[Mapping[str, int]] = None,
        name: str = "sequential",
    ) -> None:
        """``feedback`` maps next-state *output* line → present-state
        *input* line.  Present-state lines must be primary inputs of the
        network; next-state lines must be among its outputs."""
        self.name = name
        self.network = network
        self._engine = engine_for(network)
        self.depth = depth
        self.feedback: Dict[str, str] = dict(feedback)
        for next_line, present_line in self.feedback.items():
            if next_line not in network.outputs:
                raise ValueError(f"{next_line!r} is not a network output")
            if present_line not in network.inputs:
                raise ValueError(f"{present_line!r} is not a network input")
        self.external_inputs: Tuple[str, ...] = tuple(
            i for i in network.inputs if i not in self.feedback.values()
        )
        self.external_outputs: Tuple[str, ...] = tuple(
            o for o in network.outputs if o not in self.feedback
        )
        init = dict(initial_state or {})
        self.chains: Dict[str, DelayChain] = {
            present: DelayChain(depth, init.get(present, 0))
            for present in self.feedback.values()
        }
        self._initial = {p: init.get(p, 0) for p in self.feedback.values()}
        self._out_pos = {name: i for i, name in enumerate(network.outputs)}

    def reset(self, state: Optional[Mapping[str, int]] = None) -> None:
        values = dict(self._initial)
        if state:
            values.update(state)
        for present, chain in self.chains.items():
            chain.reset(values.get(present, 0))

    @property
    def present_state(self) -> Dict[str, int]:
        return {line: chain.output for line, chain in self.chains.items()}

    def step(
        self,
        inputs: Mapping[str, int],
        fault: Optional[FaultLike] = None,
        ff_fault: Optional[FlipFlopFault] = None,
    ) -> Dict[str, int]:
        """One clock period: evaluate, then latch on the rising edge.

        Returns the values of all network lines for this period (external
        outputs included), as seen *before* the edge.
        """
        assignment = dict(inputs)
        for present, chain in self.chains.items():
            assignment[present] = chain.output
        if ff_fault is not None and ff_fault.stage == self.depth - 1:
            # A stuck final-stage output corrupts the present state seen
            # by the combinational logic.
            assignment[ff_fault.state_line] = ff_fault.value
        # Engine pointwise path: clocked runs revisit the same few
        # (input, state) points across faults, so the baseline cache and
        # cone-pruned faulty re-simulation make each period cheap.
        point = tuple(
            int(assignment[name]) & 1 for name in self.network.inputs
        )
        line_values = self._engine.pointwise.line_values(point, fault)
        values = dict(zip(self._engine.compiled.names, line_values))
        for next_line, present in self.feedback.items():
            chain = self.chains[present]
            d = values[next_line]
            if (
                ff_fault is not None
                and ff_fault.state_line == present
                and ff_fault.stage < self.depth - 1
            ):
                # Intermediate-stage stuck: corrupt the shifted value.
                chain.clock_edge(d, 1)
                chain.stages[ff_fault.stage].q = ff_fault.value
            else:
                chain.clock_edge(d, 1)
            chain.clock_edge(d, 0)  # falling edge re-arms the chain
        return values

    def step_outputs(
        self,
        inputs: Mapping[str, int],
        fault: Optional[FaultLike] = None,
        ff_fault: Optional[FlipFlopFault] = None,
    ) -> Tuple[int, ...]:
        """One clock period returning only the network-output tuple.

        The campaign fast path: feedback and alternation monitoring both
        read output lines, so the full line-value map of :meth:`step` is
        not materialized.
        """
        assignment = dict(inputs)
        for present, chain in self.chains.items():
            assignment[present] = chain.output
        if ff_fault is not None and ff_fault.stage == self.depth - 1:
            assignment[ff_fault.state_line] = ff_fault.value
        point = tuple(
            int(assignment[name]) & 1 for name in self.network.inputs
        )
        outputs = self._engine.pointwise.output_values(point, fault)
        for next_line, present in self.feedback.items():
            chain = self.chains[present]
            d = outputs[self._out_pos[next_line]]
            if (
                ff_fault is not None
                and ff_fault.state_line == present
                and ff_fault.stage < self.depth - 1
            ):
                chain.clock_edge(d, 1)
                chain.stages[ff_fault.stage].q = ff_fault.value
            else:
                chain.clock_edge(d, 1)
            chain.clock_edge(d, 0)
        return outputs

    def run(
        self,
        input_stream: Iterable[Mapping[str, int]],
        fault: Optional[FaultLike] = None,
        ff_fault: Optional[FlipFlopFault] = None,
        reset: bool = True,
    ) -> List[Dict[str, int]]:
        """Simulate a whole input stream; returns per-period line values."""
        if reset:
            self.reset()
        trace = []
        for inputs in input_stream:
            trace.append(self.step(inputs, fault=fault, ff_fault=ff_fault))
        return trace

    def output_trace(
        self,
        input_stream: Iterable[Mapping[str, int]],
        fault: Optional[FaultLike] = None,
        ff_fault: Optional[FlipFlopFault] = None,
        reset: bool = True,
    ) -> List[Tuple[int, ...]]:
        """External-output tuples per period."""
        trace = self.run(input_stream, fault=fault, ff_fault=ff_fault, reset=reset)
        return [tuple(v[o] for o in self.external_outputs) for v in trace]

    def flip_flop_count(self) -> int:
        return self.depth * len(self.chains)

    def gate_count(self) -> int:
        return self.network.gate_count(include_buffers=False)
