"""Kohavi-style synthesis: state table → gates + flip-flops.

The classical flow the thesis's Chapter 4 examples assume:

1. assign state codes (:mod:`repro.seq.encoding`),
2. tabulate each output bit and each next-state bit as a boolean function
   of ``(inputs, state bits)``, with unused state codes as don't-cares,
3. minimize two-level (Quine–McCluskey) and emit one shared-product SOP
   network,
4. close the next-state outputs through D flip-flops.

The result is a :class:`~repro.seq.simulator.SequentialCircuit` whose
behaviour is verified against the symbolic :class:`StateTable` by the
test suite (exhaustive over short input streams).
"""

from __future__ import annotations

import dataclasses
from typing import Dict, List, Mapping, Optional, Sequence, Tuple

from ..logic.network import Network
from ..logic.synthesis import multi_output_sop
from ..logic.truthtable import TruthTable
from .encoding import StateEncoding, binary_encoding
from .machine import StateTable
from .simulator import SequentialCircuit


@dataclasses.dataclass(frozen=True)
class SynthesizedMachine:
    """A synthesized machine plus its bookkeeping."""

    circuit: SequentialCircuit
    encoding: StateEncoding
    input_names: Tuple[str, ...]
    output_names: Tuple[str, ...]
    state_names: Tuple[str, ...]

    def run_symbols(
        self, inputs: Sequence[Tuple[int, ...]]
    ) -> List[Tuple[int, ...]]:
        """Drive with input bit-tuples; returns output bit-tuples."""
        stream = [
            {name: vec[i] for i, name in enumerate(self.input_names)}
            for vec in inputs
        ]
        return self.circuit.output_trace(stream)


def machine_tables(
    machine: StateTable, encoding: StateEncoding
) -> Tuple[Dict[str, TruthTable], TruthTable, Tuple[str, ...]]:
    """Tabulate output and next-state functions over (inputs, state bits).

    Returns ``(tables, dont_care_mask, variable_names)`` where variables
    are the machine inputs first, then the state bits (little-endian bit
    positions follow this order).
    """
    n_in = machine.n_inputs
    width = encoding.width
    n_vars = n_in + width
    names = tuple(f"x{i}" for i in range(n_in)) + tuple(
        f"y{i}" for i in range(width)
    )
    out_bits = {f"Z{i}": 0 for i in range(machine.n_outputs)}
    next_bits = {f"Y{i}": 0 for i in range(width)}
    care = 0
    code_to_state = {encoding.code(s): s for s in machine.states}
    for point in range(1 << n_vars):
        in_vec = tuple((point >> i) & 1 for i in range(n_in))
        state_code = tuple((point >> (n_in + i)) & 1 for i in range(width))
        state = code_to_state.get(state_code)
        if state is None:
            continue  # unused code word -> don't-care
        care |= 1 << point
        transition = machine.transition(state, in_vec)
        next_code = encoding.code(transition.next_state)
        for i, bit in enumerate(transition.output):
            if bit:
                out_bits[f"Z{i}"] |= 1 << point
        for i, bit in enumerate(next_code):
            if bit:
                next_bits[f"Y{i}"] |= 1 << point
    full = (1 << (1 << n_vars)) - 1
    dont_care = TruthTable(n_vars, full & ~care)
    tables = {
        name: TruthTable(n_vars, bits, names)
        for name, bits in {**out_bits, **next_bits}.items()
    }
    return tables, dont_care, names


def synthesize_machine(
    machine: StateTable,
    encoding: Optional[StateEncoding] = None,
    style: str = "and-or",
    share_products: bool = True,
    depth: int = 1,
) -> SynthesizedMachine:
    """Synthesize ``machine`` into a gate-level sequential circuit."""
    enc = encoding if encoding is not None else binary_encoding(machine.states)
    tables, dont_care, names = machine_tables(machine, enc)
    # Fill don't-cares greedily through QM by passing them per output.
    filled = {}
    for out_name, table in tables.items():
        filled[out_name] = table
    network = _sop_with_dont_cares(
        filled, dont_care, names, style=style, share_products=share_products,
        network_name=f"{machine.name}_comb",
    )
    feedback = {f"Y{i}": f"y{i}" for i in range(enc.width)}
    initial_code = enc.code(machine.initial_state)
    initial = {f"y{i}": bit for i, bit in enumerate(initial_code)}
    circuit = SequentialCircuit(
        network,
        feedback,
        depth=depth,
        initial_state=initial,
        name=machine.name,
    )
    return SynthesizedMachine(
        circuit=circuit,
        encoding=enc,
        input_names=tuple(f"x{i}" for i in range(machine.n_inputs)),
        output_names=tuple(f"Z{i}" for i in range(machine.n_outputs)),
        state_names=tuple(f"y{i}" for i in range(enc.width)),
    )


def _sop_with_dont_cares(
    tables: Mapping[str, TruthTable],
    dont_care: TruthTable,
    names: Sequence[str],
    style: str,
    share_products: bool,
    network_name: str,
) -> Network:
    """Multi-output SOP where every output shares one don't-care set.

    :func:`repro.logic.synthesis.multi_output_sop` minimizes fully
    specified tables; to exploit don't-cares we pre-minimize each output
    with them and pass the *cover-completed* tables (QM chooses which
    don't-care points the cover absorbs).
    """
    from ..logic.synthesis import cover_to_table, minimize

    completed: Dict[str, TruthTable] = {}
    for out_name, table in tables.items():
        cover = minimize(table, dont_cares=dont_care)
        completed[out_name] = cover_to_table(cover, table.n).restrict_names(
            tuple(names)
        )
    return multi_output_sop(
        completed,
        names,
        style=style,
        network_name=network_name,
        share_products=share_products,
    )
