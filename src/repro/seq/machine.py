"""Finite-state (Mealy) machine model — the Figure 4.1a standard model.

The thesis's sequential chapter starts from the textbook machine: a
combinational block computing outputs ``Z`` and next state ``Y`` from
inputs ``X`` and present state ``y``, with a bank of D delays in the
feedback path.  :class:`StateTable` is the symbolic form (states by name,
inputs as bit tuples); synthesis to gates lives in
:mod:`repro.seq.synthesis`.
"""

from __future__ import annotations

import dataclasses
from typing import Dict, Iterable, List, Mapping, Sequence, Tuple

InputVector = Tuple[int, ...]
OutputVector = Tuple[int, ...]


class StateTableError(ValueError):
    """Raised on inconsistent state tables."""


@dataclasses.dataclass(frozen=True)
class Transition:
    """One row cell: present state + input → next state + output."""

    next_state: str
    output: OutputVector


class StateTable:
    """A completely specified Mealy machine.

    ``table[state][input_vector] = (next_state, output_vector)``.  The
    machine must be complete: every state defines every input vector of
    the declared input width.
    """

    def __init__(
        self,
        states: Sequence[str],
        n_inputs: int,
        n_outputs: int,
        table: Mapping[str, Mapping[InputVector, Tuple[str, OutputVector]]],
        initial_state: str,
        name: str = "machine",
    ) -> None:
        self.name = name
        self.states: Tuple[str, ...] = tuple(states)
        self.n_inputs = n_inputs
        self.n_outputs = n_outputs
        self.initial_state = initial_state
        if initial_state not in self.states:
            raise StateTableError("initial state not in state list")
        if len(set(self.states)) != len(self.states):
            raise StateTableError("duplicate state names")
        self._table: Dict[str, Dict[InputVector, Transition]] = {}
        expected_inputs = set(self.input_vectors())
        for state in self.states:
            if state not in table:
                raise StateTableError(f"state {state!r} missing from table")
            row: Dict[InputVector, Transition] = {}
            for vector, (nxt, output) in table[state].items():
                vec = tuple(int(v) & 1 for v in vector)
                if len(vec) != n_inputs:
                    raise StateTableError(
                        f"input vector {vector} has wrong width for {state!r}"
                    )
                if nxt not in self.states:
                    raise StateTableError(f"unknown next state {nxt!r}")
                out = tuple(int(v) & 1 for v in output)
                if len(out) != n_outputs:
                    raise StateTableError(
                        f"output vector {output} has wrong width for {state!r}"
                    )
                row[vec] = Transition(nxt, out)
            if set(row) != expected_inputs:
                raise StateTableError(f"state {state!r} is not completely specified")
            self._table[state] = row

    def input_vectors(self) -> List[InputVector]:
        """All input vectors, little-endian bit order (bit i = input i)."""
        return [
            tuple((i >> b) & 1 for b in range(self.n_inputs))
            for i in range(1 << self.n_inputs)
        ]

    def transition(self, state: str, vector: InputVector) -> Transition:
        return self._table[state][tuple(vector)]

    def step(self, state: str, vector: InputVector) -> Tuple[str, OutputVector]:
        t = self.transition(state, vector)
        return t.next_state, t.output

    def run(
        self, inputs: Iterable[InputVector], state: str = None
    ) -> List[OutputVector]:
        """Reference simulation from ``state`` (default: initial state)."""
        current = state if state is not None else self.initial_state
        outputs: List[OutputVector] = []
        for vector in inputs:
            current, out = self.step(current, vector)
            outputs.append(out)
        return outputs

    def reachable_states(self, start: str = None) -> Tuple[str, ...]:
        start = start if start is not None else self.initial_state
        seen = {start}
        frontier = [start]
        while frontier:
            state = frontier.pop()
            for vector in self.input_vectors():
                nxt = self.transition(state, vector).next_state
                if nxt not in seen:
                    seen.add(nxt)
                    frontier.append(nxt)
        return tuple(s for s in self.states if s in seen)

    def __repr__(self) -> str:  # pragma: no cover - cosmetic
        return (
            f"StateTable({self.name!r}, {len(self.states)} states, "
            f"{self.n_inputs} in, {self.n_outputs} out)"
        )


def single_input_table(
    name: str,
    rows: Mapping[str, Mapping[int, Tuple[str, int]]],
    initial_state: str,
) -> StateTable:
    """Convenience constructor for 1-input/1-output machines like the
    0101 sequence detector: ``rows[state][x] = (next_state, z)``."""
    states = list(rows)
    table = {
        state: {
            (x,): (nxt, (z,)) for x, (nxt, z) in row.items()
        }
        for state, row in rows.items()
    }
    return StateTable(states, 1, 1, table, initial_state, name=name)
