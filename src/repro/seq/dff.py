"""Flip-flop and register primitives.

Positive-edge-triggered D flip-flops, as fixed by the thesis's Section
4.3 convention ("Positive edge-triggered D-type flip-flops will be used,
so that data are latched on the 0 to 1 transition of their inputs").
The behavioural model also supports stuck-at faults on the data input,
the output, and the clock pin — the fault classes Theorem 4.1's proof
walks through for the translator latches.
"""

from __future__ import annotations

from typing import List, Optional, Sequence


class DFlipFlop:
    """One positive-edge D flip-flop with optional stuck pins."""

    def __init__(self, initial: int = 0) -> None:
        self.q = int(initial) & 1
        self._last_clock = 0
        self.stuck_d: Optional[int] = None
        self.stuck_q: Optional[int] = None
        self.stuck_clock: Optional[int] = None

    def clock_edge(self, d: int, clock: int) -> int:
        """Present ``d`` and the new ``clock`` level; latch on 0→1."""
        if self.stuck_clock is not None:
            clock = self.stuck_clock
        if self.stuck_d is not None:
            d = self.stuck_d
        if self._last_clock == 0 and clock == 1:
            self.q = int(d) & 1
        self._last_clock = clock
        return self.output

    @property
    def output(self) -> int:
        if self.stuck_q is not None:
            return self.stuck_q
        return self.q

    def reset(self, value: int = 0) -> None:
        self.q = int(value) & 1
        self._last_clock = 0


class Register:
    """A bank of D flip-flops sharing one clock."""

    def __init__(self, width: int, initial: Optional[Sequence[int]] = None) -> None:
        values = list(initial) if initial is not None else [0] * width
        if len(values) != width:
            raise ValueError("initial value width mismatch")
        self.cells: List[DFlipFlop] = [DFlipFlop(v) for v in values]

    def clock_edge(self, data: Sequence[int], clock: int) -> List[int]:
        if len(data) != len(self.cells):
            raise ValueError("data width mismatch")
        return [cell.clock_edge(d, clock) for cell, d in zip(self.cells, data)]

    @property
    def outputs(self) -> List[int]:
        return [cell.output for cell in self.cells]

    def reset(self, values: Optional[Sequence[int]] = None) -> None:
        values = list(values) if values is not None else [0] * len(self.cells)
        for cell, v in zip(self.cells, values):
            cell.reset(v)

    def __len__(self) -> int:
        return len(self.cells)


class DelayChain:
    """``depth`` flip-flops in series — the dual flip-flop feedback path
    of Figure 4.2a uses ``depth=2`` so the present state lags the next
    state by two clock periods."""

    def __init__(self, depth: int, initial: int = 0) -> None:
        if depth < 1:
            raise ValueError("delay chain needs at least one stage")
        self.stages = [DFlipFlop(initial) for _ in range(depth)]

    def clock_edge(self, d: int, clock: int) -> int:
        """Shift one position on the rising edge; returns the tail."""
        # Read stage outputs before the edge so all stages move together.
        values = [stage.output for stage in self.stages]
        inputs = [d] + values[:-1]
        for stage, value in zip(self.stages, inputs):
            stage.clock_edge(value, clock)
        return self.output

    @property
    def output(self) -> int:
        return self.stages[-1].output

    def reset(self, value: int = 0) -> None:
        for stage in self.stages:
            stage.reset(value)
