"""Reliability economics — the Figure 7.2 trade-off (Section 7.2).

The thesis's argument for single-fault protection is economic: assume
functions exist giving (1) fault-protection degrees, (2) the owner's
benefit from each degree, (3) the minimum design cost achieving it, and
(4) utility = benefit − cost.  "For the types of costs and values shown
in Figure 7.2, the peak utility is reached when single fault protection
is used."  The bench regenerates the figure's bars from this parametric
model: benefit saturates (most field failures are single faults — the
Section 1.2 failure-model discussion), while cost keeps climbing through
unidirectional- and multiple-fault coverage.

Also here: the hardcore replication reliability of Figure 5.5b and a
simple exponential-lifetime system model used by the coverage bench.
"""

from __future__ import annotations

import dataclasses
import math
from typing import Dict, List, Sequence, Tuple

#: Protection degrees in increasing coverage order.
PROTECTION_DEGREES: Tuple[str, ...] = (
    "none",
    "single fault",
    "unidirectional faults",
    "multiple faults",
)


@dataclasses.dataclass(frozen=True)
class TradeoffPoint:
    """One bar group of Figure 7.2."""

    degree: str
    benefit: float
    cost: float

    @property
    def utility(self) -> float:
        return self.benefit - self.cost


def default_parameters() -> Dict[str, Sequence[float]]:
    """Calibrated to the thesis's qualitative shape.

    Benefits reflect the single-fault model's empirical dominance
    (Section 1.2: a high percentage of physical failures manifest as
    single-line faults): covering single faults buys most of the
    available reliability benefit; the remaining fault classes add
    little.  Costs follow the design space: alternating logic ≈ 1.8–2×
    for single faults, inverter-free/space-coded designs for
    unidirectional coverage, and massive replication for multiple
    faults.  Units are arbitrary (the figure's y-axis is unlabelled).
    """
    return {
        "benefit": (0.0, 7.0, 7.8, 8.0),
        "cost": (0.0, 2.0, 4.5, 9.0),
    }


def tradeoff_curve(
    benefit: Sequence[float] = None, cost: Sequence[float] = None
) -> List[TradeoffPoint]:
    """The Figure 7.2 bars; peak utility lands at 'single fault' for the
    default parameters (asserted by the tests)."""
    params = default_parameters()
    benefit = list(benefit) if benefit is not None else list(params["benefit"])
    cost = list(cost) if cost is not None else list(params["cost"])
    if len(benefit) != len(PROTECTION_DEGREES) or len(cost) != len(
        PROTECTION_DEGREES
    ):
        raise ValueError("need one benefit and cost per protection degree")
    return [
        TradeoffPoint(degree, b, c)
        for degree, b, c in zip(PROTECTION_DEGREES, benefit, cost)
    ]


def peak_utility_degree(points: Sequence[TradeoffPoint]) -> str:
    return max(points, key=lambda p: p.utility).degree


def render_tradeoff(points: Sequence[TradeoffPoint], scale: int = 4) -> str:
    """ASCII rendering of the Figure 7.2 bar groups."""
    lines = []
    for p in points:
        lines.append(f"{p.degree}:")
        for label, value in (
            ("benefit", p.benefit),
            ("cost", p.cost),
            ("utility", p.utility),
        ):
            bar = "#" * max(int(round(value * scale)), 0)
            lines.append(f"  {label:8s} {value:6.2f} {bar}")
    return "\n".join(lines)


# ----------------------------------------------------------------------
# system-level reliability helpers
# ----------------------------------------------------------------------


def mission_reliability(
    failure_rate: float, mission_time: float, coverage: float
) -> float:
    """Probability a self-checking system completes a mission without an
    *undetected* wrong result: failures arrive Poisson(λt); each is
    caught with probability ``coverage`` (a caught failure stops the
    system safely — counted as mission-safe here)."""
    if failure_rate < 0 or mission_time < 0:
        raise ValueError("rates and times must be non-negative")
    if not 0.0 <= coverage <= 1.0:
        raise ValueError("coverage must be a probability")
    undetected_rate = failure_rate * (1.0 - coverage)
    return math.exp(-undetected_rate * mission_time)


def hardcore_chain_reliability(p_module_fail: float, n: int) -> float:
    """Figure 5.5b replication: the hardcore misses a system fault only
    if all n modules have failed — probability ``1 − p^n`` of working."""
    return 1.0 - p_module_fail ** n
