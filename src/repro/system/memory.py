"""Parity-encoded memory with address-parity folding (Sections 4.3, 7.2).

The code-conversion technique stores an *n*-bit word plus one parity bit:
"only n+1 bits are required to provide the necessary code distance for
single fault detection".  For random-access memory the thesis adopts
Dussault's scheme: "the address selection of memory must be self-checking
... by including the parity of the address with the parity of the data
stored" — a stuck address line then makes the write-side and read-side
folded parities disagree, and the 1-out-of-2 code at the PALT breaks.

Fault injection covers the memory's single-fault modes: one stuck data
cell bit, one stuck data line (affects every access), and one stuck
address line (the misaddressing fault the folding is there to catch).
"""

from __future__ import annotations

import dataclasses
from typing import Dict, List, Optional, Sequence, Tuple


def parity(bits: Sequence[int]) -> int:
    """Even-parity sum (XOR) of a bit sequence."""
    acc = 0
    for b in bits:
        acc ^= int(b) & 1
    return acc


@dataclasses.dataclass(frozen=True)
class MemoryFault:
    """One single fault inside the memory subsystem.

    ``kind`` is one of ``"cell"`` (one stored bit of one word stuck),
    ``"data_line"`` (one bit position stuck on every read),
    ``"address_line"`` (one address bit stuck for every access).
    """

    kind: str
    index: int
    value: int
    address: Optional[int] = None  # for "cell": which word

    def describe(self) -> str:
        if self.kind == "cell":
            return f"mem.cell[{self.address}].bit{self.index} s/{self.value}"
        return f"mem.{self.kind}{self.index} s/{self.value}"


class ParityMemory:
    """Word-addressable storage of (data, parity) code words."""

    def __init__(
        self,
        word_bits: int,
        address_bits: int = 4,
        fold_address_parity: bool = True,
    ) -> None:
        self.word_bits = word_bits
        self.address_bits = address_bits
        self.fold_address_parity = fold_address_parity
        self._cells: Dict[int, List[int]] = {}
        self.fault: Optional[MemoryFault] = None

    # ------------------------------------------------------------------
    def _effective_address(self, address: int) -> int:
        if self.fault is not None and self.fault.kind == "address_line":
            bit = 1 << self.fault.index
            address = (address & ~bit) | (self.fault.value << self.fault.index)
        return address & ((1 << self.address_bits) - 1)

    def _address_parity(self, address: int) -> int:
        if not self.fold_address_parity:
            return 0
        return parity(
            [(address >> i) & 1 for i in range(self.address_bits)]
        )

    def store(self, address: int, data: Sequence[int], data_parity: int) -> None:
        """Store a word with its parity bit, folding the parity of the
        address *as presented by the requester* (a stuck address line
        inside the memory then routes the word, with the requester's
        address parity, to the wrong cell)."""
        stored_parity = (int(data_parity) & 1) ^ self._address_parity(address)
        cell = [int(b) & 1 for b in data] + [stored_parity]
        self._cells[self._effective_address(address)] = cell

    def load(self, address: int) -> Tuple[List[int], int]:
        """Read ``(data bits, parity bit)`` with the address parity
        unfolded against the address the requester presents.

        Unwritten cells read as zero words initialized *pre-fault* with
        correct addressing: their stored parity carries the fold of the
        physical cell index, so a healthy read of a fresh cell is a
        valid code word while a misaddressed read still trips the check.
        """
        effective = self._effective_address(address)
        default = [0] * self.word_bits + [self._address_parity(effective)]
        cell = list(self._cells.get(effective, default))
        if self.fault is not None:
            if (
                self.fault.kind == "cell"
                and self._effective_address(self.fault.address or 0)
                == self._effective_address(address)
            ):
                cell[self.fault.index] = self.fault.value
            elif self.fault.kind == "data_line":
                cell[self.fault.index] = self.fault.value
        data = cell[: self.word_bits]
        stored_parity = cell[self.word_bits]
        return data, stored_parity ^ self._address_parity(address)

    def check_word(self, data: Sequence[int], parity_bit: int) -> bool:
        """Even-parity validity of a (data, parity) code word."""
        return parity(list(data) + [int(parity_bit) & 1]) == 0

    def inject(self, fault: Optional[MemoryFault]) -> None:
        self.fault = fault

    def clear(self) -> None:
        self._cells.clear()
        self.fault = None


def single_memory_faults(
    word_bits: int, address_bits: int, addresses: Sequence[int] = (0,)
) -> List[MemoryFault]:
    """The single-fault universe of one memory instance."""
    faults: List[MemoryFault] = []
    for index in range(word_bits + 1):
        for value in (0, 1):
            faults.append(MemoryFault("data_line", index, value))
            for addr in addresses:
                faults.append(MemoryFault("cell", index, value, address=addr))
    for index in range(address_bits):
        for value in (0, 1):
            faults.append(MemoryFault("address_line", index, value))
    return faults
