"""A small SCAL accumulator CPU with a self-dual datapath (Chapter 7).

The thesis sketches, rather than specifies, the SCAL CPU: a processor
whose datapath modules are self-dual (adder — Figure 2.2; shifter —
Figure 7.4a; status bits — Figure 7.4b) so every instruction can execute
twice — true data in the first period, complemented data in the second —
and every internal word alternates.  This module realizes that sketch as
an accumulator machine big enough to exercise the Figure 7.3 system
encoding:

* ISA: LDI, LOAD, STORE, ADD, SUB, SHL, SHR, AND, OR, XOR, NOT, JZ,
  JMP, HALT — arithmetic/shift ops are self-dual with phase-driven
  carry/fill; the logical ops run as φ-dualized circuit pairs;
* the accumulator and Z status are stored as alternating pairs
  (two flip-flop banks, Figure 7.4b style);
* data memory is parity-encoded (:class:`~repro.system.memory.ParityMemory`)
  reached through PALT/ALPT-style conversion: reads arrive as parity
  words checked by a 1-out-of-2 code, writes leave as parity words;
* the software checker watches (1) ALU/accumulator alternation each
  instruction and (2) the memory-interface code — when either breaks the
  run stops with ``detected`` set, the clock-disable behaviour of
  Section 5.5.

Fault injection: a stuck ALU result bit, a stuck accumulator flip-flop,
a stuck bus line, or any :class:`~repro.system.memory.MemoryFault`.
SUB is implemented as ``a + ¬b + cin`` with the carry-in driven by the
complemented period clock, which keeps it self-dual (the thesis's adder
argument extends bit-for-bit).
"""

from __future__ import annotations

import dataclasses
import enum
from typing import Dict, List, Optional, Sequence, Tuple

from ..modules.adder import add_words
from ..modules.shifter import shift_word
from .memory import MemoryFault, ParityMemory, parity


class Op(enum.Enum):
    """Instruction opcodes."""

    LDI = "ldi"      # load immediate into the accumulator
    LOAD = "load"    # load memory word
    STORE = "store"  # store accumulator
    ADD = "add"      # acc += mem[addr]
    SUB = "sub"      # acc -= mem[addr]
    SHL = "shl"      # logical shift left
    SHR = "shr"      # logical shift right
    AND = "and"      # acc &= mem[addr]   (phase-1 circuit: OR, the dual)
    OR = "or"        # acc |= mem[addr]   (phase-1 circuit: AND)
    XOR = "xor"      # acc ^= mem[addr]   (phase-1 circuit: XNOR)
    NOT = "not"      # acc = ~acc         (self-dual as is)
    JZ = "jz"        # jump if Z status set
    JMP = "jmp"      # unconditional jump
    HALT = "halt"


@dataclasses.dataclass(frozen=True)
class Instruction:
    op: Op
    arg: int = 0


@dataclasses.dataclass(frozen=True)
class CpuFault:
    """Single faults inside the CPU proper.

    ``kind``: ``"alu_bit"`` (one ALU result line stuck), ``"acc_ff"``
    (one accumulator flip-flop stuck — the *true*-bank cell, so the pair
    stops alternating when the stored value disagrees), ``"bus_bit"``
    (one memory-interface data line stuck on reads).
    """

    kind: str
    index: int
    value: int

    def describe(self) -> str:
        return f"cpu.{self.kind}[{self.index}] s/{self.value}"


@dataclasses.dataclass
class CpuResult:
    """Outcome of one program run."""

    halted: bool
    detected: bool
    detection_step: Optional[int]
    detection_reason: Optional[str]
    steps: int
    acc: int
    memory_words: Dict[int, int]
    trace: List[Tuple[int, str, int]]  # (pc, op, acc-after)


def word_to_bits(value: int, width: int) -> List[int]:
    return [(value >> i) & 1 for i in range(width)]


def bits_to_word(bits: Sequence[int]) -> int:
    return sum((int(b) & 1) << i for i, b in enumerate(bits))


def complement_bits(bits: Sequence[int]) -> List[int]:
    return [1 - (int(b) & 1) for b in bits]


class ScalCpu:
    """The alternating-logic accumulator machine."""

    def __init__(
        self,
        width: int = 8,
        memory_addr_bits: int = 5,
        fault: Optional[CpuFault] = None,
    ) -> None:
        self.width = width
        self.memory = ParityMemory(
            width, memory_addr_bits, fold_address_parity=True
        )
        self.fault = fault
        # Alternating accumulator: a true bank and a complement bank.
        self.acc_true: List[int] = [0] * width
        self.acc_comp: List[int] = [1] * width
        self.z_true = 1  # zero flag of an all-zero accumulator
        self.z_comp = 0

    # ------------------------------------------------------------------
    # datapath pieces
    # ------------------------------------------------------------------
    def _alu(
        self, op: Op, acc: List[int], operand: List[int], phase: int
    ) -> List[int]:
        """One period of the self-dual ALU.

        In phase 1 all operands arrive complemented; each operation is
        either self-dual as is (given the phase-alternating carry and
        fill inputs) or realized as a φ-dualized circuit *pair* — the
        phase-1 hardware computes the dual function (OR for AND, AND
        for OR, XNOR for XOR), so a healthy ALU always returns the
        complement of its phase-0 result.
        """
        if op is Op.ADD:
            result, _carry = add_words(acc, operand, carry_in=phase)
        elif op is Op.SUB:
            inverted = complement_bits(operand)
            result, _carry = add_words(acc, inverted, carry_in=1 - phase)
        elif op is Op.SHL:
            result = shift_word(acc, "left", fill=phase)
        elif op is Op.SHR:
            result = shift_word(acc, "right", fill=phase)
        elif op is Op.AND:
            if phase == 0:
                result = [a & b for a, b in zip(acc, operand)]
            else:
                result = [a | b for a, b in zip(acc, operand)]
        elif op is Op.OR:
            if phase == 0:
                result = [a | b for a, b in zip(acc, operand)]
            else:
                result = [a & b for a, b in zip(acc, operand)]
        elif op is Op.XOR:
            if phase == 0:
                result = [a ^ b for a, b in zip(acc, operand)]
            else:
                result = [1 - (a ^ b) for a, b in zip(acc, operand)]
        elif op is Op.NOT:
            result = complement_bits(acc)
        elif op in (Op.LDI, Op.LOAD):
            result = list(operand)
        else:
            result = list(acc)
        if self.fault is not None and self.fault.kind == "alu_bit":
            result = list(result)
            result[self.fault.index] = self.fault.value
        return result

    def _read_memory(self, addr: int) -> Tuple[List[int], bool]:
        """Parity-word read; returns (bits, code_ok)."""
        data, parity_bit = self.memory.load(addr)
        if self.fault is not None and self.fault.kind == "bus_bit":
            data = list(data)
            data[self.fault.index] = self.fault.value
        code_ok = self.memory.check_word(data, parity_bit)
        return data, code_ok

    def _write_memory(self, addr: int, bits: Sequence[int]) -> None:
        self.memory.store(addr, list(bits), parity(bits))

    def _acc_read(self, phase: int) -> List[int]:
        bank = self.acc_comp if phase else self.acc_true
        bits = list(bank)
        if (
            self.fault is not None
            and self.fault.kind == "acc_ff"
            and phase == 0
        ):
            bits[self.fault.index] = self.fault.value
        return bits

    def _acc_store(self, true_bits: List[int], comp_bits: List[int]) -> None:
        self.acc_true = list(true_bits)
        self.acc_comp = list(comp_bits)
        if self.fault is not None and self.fault.kind == "acc_ff":
            self.acc_true[self.fault.index] = self.fault.value

    # ------------------------------------------------------------------
    # execution
    # ------------------------------------------------------------------
    def run(
        self,
        program: Sequence[Instruction],
        data: Optional[Dict[int, int]] = None,
        max_steps: int = 1000,
    ) -> CpuResult:
        """Execute ``program`` in alternating mode.

        Every instruction runs its datapath twice (true, complemented)
        and the checker verifies the pair alternates before the result is
        committed — a nonalternating pair or a noncode memory word stops
        the machine (Section 5.5's clock disable, in software).
        """
        for addr, value in (data or {}).items():
            self._write_memory(addr, word_to_bits(value, self.width))
        self.acc_true = [0] * self.width
        self.acc_comp = [1] * self.width
        self.z_true, self.z_comp = 1, 0
        pc = 0
        steps = 0
        trace: List[Tuple[int, str, int]] = []

        def result(halted: bool, detected: bool, step: Optional[int], why: Optional[str]) -> CpuResult:
            return CpuResult(
                halted=halted,
                detected=detected,
                detection_step=step,
                detection_reason=why,
                steps=steps,
                acc=bits_to_word(self.acc_true),
                memory_words={
                    addr: bits_to_word(self.memory.load(addr)[0])
                    for addr in sorted(self.memory._cells)
                },
                trace=trace,
            )

        while steps < max_steps:
            if pc >= len(program):
                return result(True, False, None, None)
            instr = program[pc]
            steps += 1
            if instr.op is Op.HALT:
                trace.append((pc, instr.op.value, bits_to_word(self.acc_true)))
                return result(True, False, None, None)
            if instr.op is Op.JMP:
                trace.append((pc, instr.op.value, bits_to_word(self.acc_true)))
                pc = instr.arg
                continue
            if instr.op is Op.JZ:
                if self.z_true == self.z_comp:
                    return result(False, True, steps, "status pair nonalternating")
                trace.append((pc, instr.op.value, bits_to_word(self.acc_true)))
                pc = instr.arg if self.z_true else pc + 1
                continue
            operand_pair, code_ok = self._fetch_operand(instr)
            if not code_ok:
                return result(False, True, steps, "memory code word invalid")
            results = []
            for phase in (0, 1):
                acc = self._acc_read(phase)
                results.append(self._alu(instr.op, acc, operand_pair[phase], phase))
            if any(a == b for a, b in zip(results[0], results[1])):
                return result(False, True, steps, "ALU pair nonalternating")
            if instr.op is Op.STORE:
                self._write_memory(instr.arg, self._acc_read(0))
            else:
                self._acc_store(results[0], results[1])
            # Z status as an alternating pair.  Zero-detect is not
            # self-dual by itself, so the φ-dualized form is used: the
            # phase-0 circuit is NOR(acc), the phase-1 circuit is its
            # dual NAND evaluated on the complemented bank — healthy
            # operation then gives complementary flag values.
            self.z_true = int(not any(self.acc_true))
            self.z_comp = 1 - int(all(self.acc_comp))
            if self.z_true == self.z_comp:
                return result(False, True, steps, "status pair nonalternating")
            trace.append((pc, instr.op.value, bits_to_word(self.acc_true)))
            pc += 1
        return result(False, False, None, None)

    def _fetch_operand(
        self, instr: Instruction
    ) -> Tuple[Tuple[List[int], List[int]], bool]:
        """The operand's alternating pair for the two periods."""
        if instr.op is Op.LDI:
            bits = word_to_bits(instr.arg, self.width)
            return (bits, complement_bits(bits)), True
        if instr.op in (Op.LOAD, Op.ADD, Op.SUB, Op.AND, Op.OR, Op.XOR):
            bits, ok = self._read_memory(instr.arg)
            return (bits, complement_bits(bits)), ok
        zero = [0] * self.width
        return (zero, complement_bits(zero)), True


def reference_run(
    program: Sequence[Instruction],
    data: Optional[Dict[int, int]] = None,
    width: int = 8,
    max_steps: int = 1000,
) -> Tuple[int, Dict[int, int]]:
    """A plain (unchecked) interpreter: the golden model the SCAL CPU is
    compared against in tests and in the Figure 7.3 sweep."""
    mem = dict(data or {})
    mask = (1 << width) - 1
    acc = 0
    pc = 0
    steps = 0
    while steps < max_steps and pc < len(program):
        instr = program[pc]
        steps += 1
        if instr.op is Op.HALT:
            break
        if instr.op is Op.JMP:
            pc = instr.arg
            continue
        if instr.op is Op.JZ:
            pc = instr.arg if acc == 0 else pc + 1
            continue
        if instr.op is Op.LDI:
            acc = instr.arg & mask
        elif instr.op is Op.LOAD:
            acc = mem.get(instr.arg, 0) & mask
        elif instr.op is Op.STORE:
            mem[instr.arg] = acc
        elif instr.op is Op.ADD:
            acc = (acc + mem.get(instr.arg, 0)) & mask
        elif instr.op is Op.SUB:
            acc = (acc - mem.get(instr.arg, 0)) & mask
        elif instr.op is Op.AND:
            acc &= mem.get(instr.arg, 0)
        elif instr.op is Op.OR:
            acc |= mem.get(instr.arg, 0)
        elif instr.op is Op.XOR:
            acc ^= mem.get(instr.arg, 0)
        elif instr.op is Op.NOT:
            acc = (~acc) & mask
        elif instr.op is Op.SHL:
            acc = (acc << 1) & mask
        elif instr.op is Op.SHR:
            acc = (acc >> 1) & mask
        pc += 1
    return acc, mem
