"""Alternate data retry, the Figure 7.5 design, and TMR (Section 7.4).

Shedletsky's ADR keeps a space-domain self-checking system running after
a fault by *retrying with complemented data*: a single stuck output line
corrupts a word in at most one of the two complement-domain passes, so
the retry recovers the correct value.  The thesis's cost argument:

* ADR = space self-checking (factor S ≈ 2) made alternating (factor
  A ≈ 1.8–2) → ``A·S·N ≈ 4×`` a normal CPU — "probably worse than a
  triple modular redundant CPU";
* the Figure 7.5 alternative: a **normal CPU and a SCAL CPU in
  parallel** (cost ``1 + A``), running the SCAL CPU on only the first
  time period at full speed; after a detected fault the system drops to
  half speed, where the SCAL CPU's two periods plus the normal CPU give
  three result versions to vote or diagnose with — "comparable with TMR
  and may cost less than TMR if the value of A is less than two";
* TMR: three copies and a voter, cost slightly over 3×, masks a single
  faulty member at full speed.

The executable models below demonstrate the *mechanisms* (ADR error
correction, Fig. 7.5 degradation, TMR masking) on a word-level module
with injected stuck output bits; the cost table is the E-FIG7.5 bench.
"""

from __future__ import annotations

import dataclasses
from typing import Callable, List, Optional

from ..scal.costs import REYNOLDS_COST_FACTOR

WordFn = Callable[[int], int]


def is_word_self_dual(fn: WordFn, width: int) -> bool:
    """True when ``fn(x̄) = ¬fn(x)`` bitwise for every word — the
    precondition for ADR's complement-pass recovery.  Genuinely self-dual
    word operations include bitwise NOT, rotations/shuffles, and addition
    of a constant whose complement equals itself mod 2^width."""
    mask = (1 << width) - 1
    return all(
        fn((~x) & mask) & mask == (~fn(x)) & mask for x in range(1 << width)
    )


@dataclasses.dataclass(frozen=True)
class StuckOutputBit:
    """A single stuck line on a module's output word."""

    index: int
    value: int


class FaultyModule:
    """A word-function module with an optional stuck output bit and a
    duplicated (space-redundant) check copy for detection."""

    def __init__(
        self,
        fn: WordFn,
        width: int,
        fault: Optional[StuckOutputBit] = None,
    ) -> None:
        self.fn = fn
        self.width = width
        self.fault = fault
        self.mask = (1 << width) - 1

    def compute(self, x: int) -> int:
        """The (possibly corrupted) module output."""
        out = self.fn(x) & self.mask
        if self.fault is not None:
            bit = 1 << self.fault.index
            out = (out & ~bit) | (self.fault.value << self.fault.index)
        return out

    def golden(self, x: int) -> int:
        return self.fn(x) & self.mask


@dataclasses.dataclass(frozen=True)
class AdrOutcome:
    value: int
    retried: bool
    correct: bool
    unrecoverable: bool


class AdrSystem:
    """Alternate data retry around one self-dual module.

    Detection is by duplication (the space-domain self-checking layer the
    thesis prices at S ≈ 2): the stuck line lives in the main copy only,
    so a sensitized fault shows as a mismatch.  Recovery is the retry
    with complemented data: the module is self-dual, so the complement
    pass recomputes the same word in the complement domain, where the
    stuck line corrupts the *other* polarity — at most one pass is wrong
    at any bit.
    """

    def __init__(self, module: FaultyModule) -> None:
        self.module = module
        self.mask = module.mask

    def execute(self, x: int) -> AdrOutcome:
        first = self.module.compute(x)
        check = self.module.golden(x)  # the duplicate (fault-free copy)
        if first == check:
            return AdrOutcome(first, retried=False, correct=True,
                              unrecoverable=False)
        # Retry with complemented data.  Self-duality of fn is required:
        # fn(x̄) = ¬fn(x), so decoding is one complementation.
        retry_raw = self.module.compute((~x) & self.mask)
        retry = (~retry_raw) & self.mask
        retry_check = (~self.module.golden((~x) & self.mask)) & self.mask
        # Merge: take bits where the two passes agree; where they differ,
        # the stuck line corrupted exactly one pass — the duplicate
        # identifies which on this access.
        if retry == retry_check:
            value = retry
        else:
            value = check  # both passes hit; fall back to the duplicate
        correct = value == self.module.golden(x)
        return AdrOutcome(value, retried=True, correct=correct,
                          unrecoverable=not correct)


class TmrSystem:
    """Triple modular redundancy over the same module family."""

    def __init__(
        self,
        fn: WordFn,
        width: int,
        faulty_copy: Optional[int] = None,
        fault: Optional[StuckOutputBit] = None,
    ) -> None:
        self.copies = [
            FaultyModule(fn, width, fault if i == faulty_copy else None)
            for i in range(3)
        ]
        self.mask = (1 << width) - 1

    def execute(self, x: int) -> int:
        a, b, c = (copy.compute(x) for copy in self.copies)
        return (a & b) | (a & c) | (b & c)  # bitwise majority vote


@dataclasses.dataclass(frozen=True)
class DesignPoint:
    """One row of the Section 7.4 cost/capability comparison."""

    approach: str
    cost_factor: float
    detects_single_faults: bool
    corrects_single_faults: bool
    speed_before_fault: float
    speed_after_fault: float


def design_comparison(
    a_factor: float = REYNOLDS_COST_FACTOR, s_factor: float = 2.0
) -> List[DesignPoint]:
    """The Section 7.4 comparison table with parametric A and S."""
    return [
        DesignPoint("normal CPU", 1.0, False, False, 1.0, 0.0),
        DesignPoint("SCAL CPU", a_factor, True, False, 0.5, 0.0),
        DesignPoint(
            "space self-checking CPU", s_factor, True, False, 1.0, 0.0
        ),
        DesignPoint(
            "ADR (Shedletsky)", a_factor * s_factor, True, True, 1.0, 0.5
        ),
        DesignPoint(
            "normal + SCAL parallel (Fig 7.5)",
            1.0 + a_factor,
            True,
            True,
            1.0,
            0.5,
        ),
        DesignPoint("TMR", 3.1, True, True, 1.0, 1.0),
    ]


@dataclasses.dataclass(frozen=True)
class Fig75Outcome:
    value: int
    fault_detected: bool
    degraded: bool
    correct: bool


class Fig75System:
    """The Figure 7.5 fault-tolerant pair: normal CPU ∥ SCAL CPU.

    Before any fault both run at full speed (the SCAL CPU uses only its
    first period) and a TSCC compares them.  On mismatch the system drops
    to half speed: the SCAL CPU contributes both periods, giving three
    result versions (normal, SCAL-true, SCAL-complement decoded) for a
    majority vote — the thesis's "three sets of output; a vote could be
    taken or the faulty member removed".
    """

    def __init__(
        self,
        fn: WordFn,
        width: int,
        normal_fault: Optional[StuckOutputBit] = None,
        scal_fault: Optional[StuckOutputBit] = None,
    ) -> None:
        self.normal = FaultyModule(fn, width, normal_fault)
        self.scal = FaultyModule(fn, width, scal_fault)
        self.mask = (1 << width) - 1
        self.degraded = False

    def execute(self, x: int) -> Fig75Outcome:
        normal_out = self.normal.compute(x)
        scal_first = self.scal.compute(x)
        golden = self.normal.golden(x)
        if not self.degraded:
            if normal_out == scal_first:
                return Fig75Outcome(normal_out, False, False,
                                    normal_out == golden)
            self.degraded = True  # fault detected -> half speed from now
        # Degraded (half-speed) mode: three versions, bitwise vote.
        scal_second = (~self.scal.compute((~x) & self.mask)) & self.mask
        a, b, c = normal_out, scal_first, scal_second
        voted = (a & b) | (a & c) | (b & c)
        return Fig75Outcome(voted, True, True, voted == golden)
