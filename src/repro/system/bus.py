"""The encoded bus and code-reply peripherals (Figures 7.1 / 7.3).

The computer-system model moves parity-coded words over a shared bus;
peripherals answer through *code reply* signals — "the reply signals
would provide assurance that the correct data transfer had been made".
This module models the transfer path with single-fault injection (one
stuck bus line) and the reply handshake: a transfer is acknowledged only
when the receiver's code check passes, so a corrupted word yields a
missing/negative reply instead of silent acceptance.
"""

from __future__ import annotations

import dataclasses
from typing import Dict, List, Optional, Sequence, Tuple

from .memory import parity


@dataclasses.dataclass(frozen=True)
class BusFault:
    """One bus line stuck (data lines 0..w-1, line w = the parity line)."""

    line: int
    value: int

    def describe(self) -> str:
        return f"bus.line{self.line} s/{self.value}"


@dataclasses.dataclass(frozen=True)
class TransferResult:
    """Outcome of one bus transfer."""

    data: Tuple[int, ...]
    code_ok: bool
    reply: Tuple[int, int]  # 1-out-of-2 code reply

    @property
    def acknowledged(self) -> bool:
        return self.reply[0] != self.reply[1] and self.reply == (1, 0)


class EncodedBus:
    """A parity-coded bus of ``width`` data lines + one parity line."""

    def __init__(self, width: int) -> None:
        self.width = width
        self.fault: Optional[BusFault] = None

    def inject(self, fault: Optional[BusFault]) -> None:
        if fault is not None and not 0 <= fault.line <= self.width:
            raise ValueError("bus line out of range")
        self.fault = fault

    def transfer(self, data: Sequence[int]) -> Tuple[List[int], int]:
        """Drive a word (sender computes parity); return what arrives."""
        if len(data) != self.width:
            raise ValueError("word width mismatch")
        word = [int(b) & 1 for b in data] + [parity(data)]
        if self.fault is not None:
            word[self.fault.line] = self.fault.value
        return word[: self.width], word[self.width]


class Peripheral:
    """A receiver with the Figure 7.1 code-reply behaviour."""

    def __init__(self, name: str) -> None:
        self.name = name
        self.received: List[Tuple[int, ...]] = []

    def accept(self, data: Sequence[int], parity_bit: int) -> TransferResult:
        ok = parity(list(data) + [int(parity_bit) & 1]) == 0
        if ok:
            self.received.append(tuple(int(b) & 1 for b in data))
            reply = (1, 0)  # positive code reply
        else:
            reply = (0, 1)  # negative code reply: do not accept
        return TransferResult(tuple(int(b) & 1 for b in data), ok, reply)


class BusSystem:
    """Sender → bus → peripheral, with the reply checked by the sender."""

    def __init__(self, width: int, peripheral_name: str = "device") -> None:
        self.bus = EncodedBus(width)
        self.peripheral = Peripheral(peripheral_name)

    def send(self, data: Sequence[int]) -> TransferResult:
        arrived, parity_bit = self.bus.transfer(data)
        return self.peripheral.accept(arrived, parity_bit)

    def fault_sweep(self, words: Sequence[Sequence[int]]) -> Dict[str, int]:
        """Inject every single bus-line fault; count outcomes.

        A fault is *dangerous* if some transfer delivers wrong data with
        a positive reply; the parity line makes that impossible for
        single stuck lines (a flipped data line breaks parity; a flipped
        parity line breaks it too).
        """
        detected = silent = dangerous = 0
        for line in range(self.bus.width + 1):
            for value in (0, 1):
                self.bus.inject(BusFault(line, value))
                fault_detected = fault_wrong = False
                for word in words:
                    result = self.send(word)
                    wrong = result.data != tuple(
                        int(b) & 1 for b in word
                    )
                    if not result.acknowledged:
                        fault_detected = True
                    elif wrong:
                        fault_wrong = True
                if fault_wrong:
                    dangerous += 1
                elif fault_detected:
                    detected += 1
                else:
                    silent += 1
        self.bus.inject(None)
        return {
            "detected": detected,
            "silent": silent,
            "dangerous": dangerous,
        }
