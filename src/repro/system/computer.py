"""The Figure 7.3 SCAL computer system and its single-fault sweep.

Section 7.2's encoding argument: match each subsystem's code to its
failure mode — time redundancy (alternating logic) in the CPU where a
parity output would cost as much as the CPU itself, a single parity bit
on the bus and in memory where output lines are independent, translators
(ALPT/PALT) at the boundary, a TSCC reporting to the outside world, and
code-reply signals on the peripherals.  The resulting system is
"protected from single faults" end to end.

:class:`ScalComputer` wires :class:`~repro.system.cpu.ScalCpu` to its
parity memory and exposes the sweep the E-FIG7.3 bench runs: inject every
single fault of the CPU/bus/memory universe, run a program, and classify
the outcome as *detected*, *silent* (never corrupts an architectural
result), or *dangerous* (wrong result, no detection) — the thesis's
claim is that the dangerous class is empty.
"""

from __future__ import annotations

import dataclasses
from typing import Dict, List, Optional, Sequence, Tuple

from .cpu import (
    CpuFault,
    CpuResult,
    Instruction,
    Op,
    ScalCpu,
    bits_to_word,
    reference_run,
)
from .memory import MemoryFault, single_memory_faults


@dataclasses.dataclass(frozen=True)
class SweepOutcome:
    """Classification counts of a single-fault sweep."""

    total: int
    detected: int
    silent: int
    dangerous: int
    dangerous_faults: Tuple[str, ...]

    @property
    def coverage(self) -> float:
        """Fraction of output-corrupting faults that were detected."""
        corrupting = self.detected + self.dangerous
        return self.detected / corrupting if corrupting else 1.0


class ScalComputer:
    """CPU + parity memory + checkers, runnable with injected faults."""

    def __init__(self, width: int = 8, memory_addr_bits: int = 5) -> None:
        self.width = width
        self.memory_addr_bits = memory_addr_bits

    def run(
        self,
        program: Sequence[Instruction],
        data: Optional[Dict[int, int]] = None,
        cpu_fault: Optional[CpuFault] = None,
        memory_fault: Optional[MemoryFault] = None,
        max_steps: int = 1000,
    ) -> CpuResult:
        cpu = ScalCpu(self.width, self.memory_addr_bits, fault=cpu_fault)
        if memory_fault is not None:
            cpu.memory.inject(memory_fault)
        return cpu.run(program, data=data, max_steps=max_steps)

    def cpu_fault_universe(self) -> List[CpuFault]:
        faults: List[CpuFault] = []
        for kind in ("alu_bit", "acc_ff", "bus_bit"):
            for index in range(self.width):
                for value in (0, 1):
                    faults.append(CpuFault(kind, index, value))
        return faults

    def sweep(
        self,
        program: Sequence[Instruction],
        data: Optional[Dict[int, int]] = None,
        observed_addresses: Optional[Sequence[int]] = None,
        max_steps: int = 1000,
    ) -> SweepOutcome:
        """Inject every single CPU/memory fault; classify outcomes.

        Architectural results compared: the final accumulator and the
        words at ``observed_addresses`` (default: every address the
        golden run wrote).
        """
        golden_acc, golden_mem = reference_run(
            program, data, self.width, max_steps
        )
        observed = (
            list(observed_addresses)
            if observed_addresses is not None
            else sorted(golden_mem)
        )

        detected = silent = dangerous = 0
        bad: List[str] = []
        universe: List[Tuple[str, Optional[CpuFault], Optional[MemoryFault]]] = []
        for cf in self.cpu_fault_universe():
            universe.append((cf.describe(), cf, None))
        for mf in single_memory_faults(
            self.width, self.memory_addr_bits, addresses=observed or (0,)
        ):
            universe.append((mf.describe(), None, mf))

        for label, cf, mf in universe:
            cpu = ScalCpu(self.width, self.memory_addr_bits, fault=cf)
            if mf is not None:
                cpu.memory.inject(mf)
            result = cpu.run(program, data=data, max_steps=max_steps)
            # Output data leaves through the Figure 7.3 encoding buffer:
            # read each observed word back through the (still faulty)
            # memory and code-check it — a parity violation there is a
            # detection, exactly like one during the run.
            detected_now = result.detected
            wrong = result.acc != golden_acc
            for addr in observed:
                bits, parity_bit = cpu.memory.load(addr)
                if not cpu.memory.check_word(bits, parity_bit):
                    detected_now = True
                    break
                if bits_to_word(bits) != golden_mem.get(addr, 0):
                    wrong = True
            if detected_now:
                detected += 1
            elif wrong:
                dangerous += 1
                bad.append(label)
            else:
                silent += 1
        return SweepOutcome(
            total=len(universe),
            detected=detected,
            silent=silent,
            dangerous=dangerous,
            dangerous_faults=tuple(bad),
        )


def demo_program() -> Tuple[List[Instruction], Dict[int, int]]:
    """A small program exercising every datapath op: computes
    ``mem[10] = 2*(a+b) - c`` and ``mem[11] = (a+b) >> 1``."""
    program = [
        Instruction(Op.LOAD, 0),    # acc = a
        Instruction(Op.ADD, 1),     # acc = a + b
        Instruction(Op.STORE, 9),   # scratch = a + b
        Instruction(Op.SHL),        # acc = 2(a+b)
        Instruction(Op.SUB, 2),     # acc = 2(a+b) - c
        Instruction(Op.STORE, 10),
        Instruction(Op.LOAD, 9),
        Instruction(Op.SHR),        # acc = (a+b) >> 1
        Instruction(Op.STORE, 11),
        Instruction(Op.HALT),
    ]
    data = {0: 23, 1: 44, 2: 17}
    return program, data


def multiply_program() -> Tuple[List[Instruction], Dict[int, int]]:
    """Shift-and-add multiplication: ``mem[12] = a * b`` (for operands
    whose product fits the word).  Exercises the whole ISA — loops,
    conditional branches, shifts, AND masking, and memory traffic.

    Layout: mem[0] = a (multiplicand), mem[1] = b (multiplier),
    mem[2] = 1 (mask constant), mem[10] = shifted multiplicand,
    mem[11] = remaining multiplier, mem[12] = accumulating product.
    """
    program = [
        Instruction(Op.LOAD, 0),     # 0: multiplicand
        Instruction(Op.STORE, 10),
        Instruction(Op.LOAD, 1),     # 2: multiplier
        Instruction(Op.STORE, 11),
        Instruction(Op.LDI, 0),      # 4: product = 0
        Instruction(Op.STORE, 12),
        # loop head
        Instruction(Op.LOAD, 11),    # 6
        Instruction(Op.JZ, 18),      # 7: done when multiplier exhausted
        Instruction(Op.AND, 2),      # 8: low bit of multiplier
        Instruction(Op.JZ, 13),      # 9: skip add when bit clear
        Instruction(Op.LOAD, 12),    # 10
        Instruction(Op.ADD, 10),     # 11: product += shifted multiplicand
        Instruction(Op.STORE, 12),   # 12
        Instruction(Op.LOAD, 10),    # 13: multiplicand <<= 1
        Instruction(Op.SHL),
        Instruction(Op.STORE, 10),
        Instruction(Op.LOAD, 11),    # 16: multiplier >>= 1
        Instruction(Op.SHR),
        Instruction(Op.STORE, 11),   # 18
        Instruction(Op.JMP, 6),      # 19: loop
        Instruction(Op.HALT),        # 20
    ]
    program[7] = Instruction(Op.JZ, 20)  # "done" branch targets HALT
    data = {0: 11, 1: 13, 2: 1}
    return program, data


def countdown_program(start: int) -> List[Instruction]:
    """A loop with a data-dependent branch: counts ``start`` down to 0."""
    return [
        Instruction(Op.LDI, start),   # 0
        Instruction(Op.STORE, 4),     # 1: counter
        Instruction(Op.LOAD, 4),      # 2: loop head
        Instruction(Op.JZ, 7),        # 3
        Instruction(Op.SUB, 5),       # 4: acc -= 1
        Instruction(Op.STORE, 4),     # 5
        Instruction(Op.JMP, 2),       # 6
        Instruction(Op.HALT),         # 7
    ]
