"""Command-line interface: ``python -m repro <command> ...``.

Point the thesis's machinery at any ``.bench`` netlist:

* ``analyze``   — Algorithm 3.1 + the exhaustive oracle;
* ``testgen``   — Theorem 3.2 alternating test pairs (truth-table route
  for narrow networks, PODEM for wide ones);
* ``repair``    — automatic self-checking repair (Figure 3.7 style);
* ``minority``  — convert a NAND/NOR netlist to minority modules;
* ``dot``       — Graphviz export with the failing lines highlighted;
* ``faulttable``— a Figure 3.6-style fault table for chosen lines;
* ``campaign``  — a bulk single-fault coverage sweep through the
  backend-selection heuristic (bitmask / vectorized / fallback /
  kernel) under the supervised runtime (``--timeout``,
  ``--checkpoint``/``--resume``, ``--report``);
* ``atpg``      — fault-dropping PODEM campaign: guided search per
  target, batched candidate completions simulated against the whole
  remaining fault universe, reverse-greedy compaction
  (``--no-collapse``/``--no-drop``/``--no-compact``/``--report``);
* ``synth``     — population-based synthesis/repair campaign evolving a
  gate network toward self-duality + self-checking (``--spec NAME`` or
  ``--repair NETLIST``), generations batched through the supervised
  transport ladder with ``--checkpoint``/``--resume`` deterministic
  continuations and an area-vs-coverage Pareto report;
* ``fuzz``      — seeded differential/metamorphic fuzz campaign with
  counterexample shrinking (see ``repro.qa``);
* ``stats``     — render a flight recorded with ``--trace-out``: time
  per backend, degradations, retries, faults/sec, QA pass rates;
* ``serve``     — stdlib asyncio campaign service: queues requests on a
  bounded worker pool (shedding overload with 429), deduplicates
  identical campaigns by content fingerprint, streams NDJSON progress,
  enforces per-request deadlines with cooperative cancellation, drains
  gracefully on SIGTERM, journals accepted work for ``--recover``, and
  exposes Prometheus metrics at ``/metrics``;
* ``worker``    — one socket-transport worker lane (normally spawned by
  the supervisor, never by hand).

``campaign``, ``atpg``, and ``fuzz`` accept ``--metrics-out FILE`` (Prometheus
text, or JSON when the name ends ``.json``) and ``--trace-out FILE``
(the JSONL flight ``stats`` reads); both are off by default, leaving
the telemetry layer at its zero-overhead disabled state.
"""

from __future__ import annotations

import argparse
import contextlib
import sys
from typing import List, Optional

from .core.analysis import analyze_network, lines_needing_multi_output
from .core.atpg import Podem
from .core.design import make_self_checking
from .core.report import fault_table, render_fault_table, undetected_faults
from .core.simulate import ScalSimulator
from .core.testgen import all_test_pairs, format_pair
from .logic.benchfmt import load_bench, save_bench
from .logic.faults import StuckAt
from .logic.render import annotate_with_analysis, render_dot, render_listing

TRUTH_TABLE_LIMIT = 12  # inputs beyond this use the structural route


def _load(path: str):
    try:
        return load_bench(path)
    except OSError as error:
        raise SystemExit(f"cannot read {path}: {error}")


def _write_metrics(path: str) -> None:
    import json

    from . import obs

    if path.endswith(".json"):
        text = json.dumps(obs.REGISTRY.to_json(), indent=2, sort_keys=True)
    else:
        text = obs.REGISTRY.to_prometheus()
    with open(path, "w") as handle:
        handle.write(text if text.endswith("\n") else text + "\n")


@contextlib.contextmanager
def _telemetry(args: argparse.Namespace):
    """Honour ``--metrics-out`` / ``--trace-out`` around one command.

    With neither flag this is a straight pass-through: the registry
    stays disabled and no recorder is installed, so the instrumented
    seams pay their single branch and nothing more.
    """
    from . import obs

    metrics_out = getattr(args, "metrics_out", None)
    trace_out = getattr(args, "trace_out", None)
    if metrics_out is None and trace_out is None:
        yield
        return
    with obs.recording(
        trace_path=trace_out, metrics=metrics_out is not None
    ):
        try:
            yield
        finally:
            if metrics_out is not None:
                _write_metrics(metrics_out)


def cmd_analyze(args: argparse.Namespace) -> int:
    network = _load(args.netlist)
    if len(network.inputs) > TRUTH_TABLE_LIMIT:
        print(
            f"{len(network.inputs)} inputs exceed the exhaustive limit "
            f"({TRUTH_TABLE_LIMIT}); run testgen for structural checks"
        )
        return 2
    analysis = analyze_network(network)
    print(analysis.summary())
    needy = lines_needing_multi_output(analysis)
    if needy:
        print(f"lines needing Corollary 3.2: {', '.join(needy)}")
    if args.oracle:
        verdict = ScalSimulator(network).verdict()
        print(verdict.summary())
    if args.listing:
        print()
        print(
            render_listing(
                network, annotations=annotate_with_analysis(network, analysis)
            )
        )
    return 0 if analysis.is_self_checking else 1


def cmd_testgen(args: argparse.Namespace) -> int:
    network = _load(args.netlist)
    if len(network.inputs) <= TRUTH_TABLE_LIMIT and not args.structural:
        plans = all_test_pairs(network, output=args.output)
        names = network.inputs
        for (line, value), tests in sorted(plans.items()):
            if tests:
                shown = ", ".join(format_pair(p, names) for p in tests[:4])
                more = " ..." if len(tests) > 4 else ""
                print(f"{line} s/{value}: {shown}{more}")
            else:
                print(f"{line} s/{value}: UNTESTABLE")
        return 0
    podem = Podem(network)
    failures = 0
    for line in network.lines():
        for value in (0, 1):
            pair = podem.generate_alternating_test(StuckAt(line, value))
            if pair is None:
                print(f"{line} s/{value}: no alternating test found")
                failures += 1
            else:
                print(f"{line} s/{value}: pair anchored at {pair[0]:#x}")
    return 0 if failures == 0 else 1


def cmd_repair(args: argparse.Namespace) -> int:
    network = _load(args.netlist)
    report = make_self_checking(network)
    print(report.summary())
    if args.out and report.success:
        save_bench(report.network, args.out, header="repaired by repro")
        print(f"wrote {args.out}")
    return 0 if report.success else 1


def cmd_minority(args: argparse.Namespace) -> int:
    from .modules.minority import conversion_report, to_minority_network

    network = _load(args.netlist)
    converted = to_minority_network(network)
    report = conversion_report(converted)
    print(
        f"{report.modules} minority modules, {report.total_inputs} total "
        f"inputs ({report.clock_inputs} clock fan-ins)"
    )
    if args.out:
        save_bench(converted, args.out, header="minority conversion by repro")
        print(f"wrote {args.out}")
    return 0


def cmd_dot(args: argparse.Namespace) -> int:
    network = _load(args.netlist)
    highlight: List[str] = []
    if len(network.inputs) <= TRUTH_TABLE_LIMIT:
        highlight = list(analyze_network(network).failing_lines())
    dot = render_dot(network, highlight=highlight)
    if args.out:
        with open(args.out, "w") as handle:
            handle.write(dot + "\n")
        print(f"wrote {args.out}")
    else:
        print(dot)
    return 0


def cmd_faulttable(args: argparse.Namespace) -> int:
    network = _load(args.netlist)
    faults = []
    for spec in args.faults:
        line, _, value = spec.rpartition("/")
        if not line or value not in ("0", "1"):
            raise SystemExit(f"bad fault spec {spec!r}; use line/0 or line/1")
        faults.append(StuckAt(line, int(value)))
    rows = fault_table(network, faults)
    print(render_fault_table(network, rows))
    bad = undetected_faults(rows)
    if bad:
        print(f"\nundetected wrong outputs: {', '.join(bad)}")
    return 0 if not bad else 1


def cmd_campaign(args: argparse.Namespace) -> int:
    import json

    from .engine import CheckpointError, FaultSweep
    from .core.collapse import collapsed_single_faults

    if args.processes is not None and args.processes < 1:
        raise SystemExit(
            f"--processes must be >= 1, got {args.processes}"
        )
    if args.timeout is not None and args.timeout <= 0:
        raise SystemExit(
            f"--timeout must be a positive number of seconds, "
            f"got {args.timeout:g}"
        )
    if args.resume and args.checkpoint is None:
        raise SystemExit("--resume requires --checkpoint PATH")
    network = _load(args.netlist)
    sweep = FaultSweep(network)
    if args.no_collapse:
        universe = sweep.single_fault_universe()
    else:
        universe = list(collapsed_single_faults(network))
    try:
        with _telemetry(args):
            stats = sweep.coverage(
                universe,
                processes=args.processes,
                backend=args.backend,
                timeout=args.timeout,
                checkpoint=args.checkpoint,
                resume=args.resume,
                transport=args.transport,
            )
    except CheckpointError as error:
        raise SystemExit(str(error))
    stats["backend"] = sweep.last_sweep_backend
    report = sweep.last_report
    if args.json:
        if args.report and report is not None:
            stats["report"] = report.to_dict()
        print(json.dumps(stats, sort_keys=True))
    else:
        print(
            f"{int(stats['faults'])} faults via {stats['backend']}: "
            f"{stats['detected']:.1%} detected, "
            f"{stats['silent']:.1%} silent, "
            f"{stats['dangerous']:.1%} dangerous"
        )
        if report is not None:
            if args.report:
                print(report.summary())
            else:
                # Degradations are never silent: even without --report,
                # every ladder step down is surfaced with its reason.
                for deg in report.degradations:
                    print(f"degraded {deg.frm} -> {deg.to}: {deg.reason}")
    return 0 if stats["dangerous"] == 0 else 1


def cmd_atpg(args: argparse.Namespace) -> int:
    import json

    from .engine.atpg import run_atpg

    if args.timeout is not None and args.timeout <= 0:
        raise SystemExit(
            f"--timeout must be a positive number of seconds, "
            f"got {args.timeout:g}"
        )
    if args.candidates < 1:
        raise SystemExit(
            f"--candidates must be >= 1, got {args.candidates}"
        )
    network = _load(args.netlist)
    with _telemetry(args):
        report = run_atpg(
            network,
            collapse=not args.no_collapse,
            drop=not args.no_drop,
            compact=not args.no_compact,
            candidates=args.candidates,
            pairs=args.pairs,
            backend=args.backend,
            target_timeout=args.timeout,
            max_backtracks=args.max_backtracks,
            seed=args.seed,
        )
    if args.json:
        data = report.to_dict()
        if not args.report:
            data.pop("classifications")
            data.pop("detected_by")
        print(json.dumps(data, sort_keys=True))
    else:
        print(report.summary())
        if args.report:
            names = list(network.inputs)
            width = len(names)
            for index, point in enumerate(report.patterns):
                bits = "".join(str((point >> i) & 1) for i in range(width))
                covered = sorted(
                    name
                    for name, j in report.detected_by.items()
                    if j == index
                )
                print(f"  pattern {index}: {bits}  covers {', '.join(covered)}")
            for name, status in sorted(report.classifications.items()):
                if status != "detected":
                    print(f"  {status}: {name}")
    return 0 if report.aborted == 0 else 1


def cmd_synth(args: argparse.Namespace) -> int:
    import json

    from .engine import CampaignCancelled, CheckpointError
    from .synth import SPECS, SynthCampaign, SynthInterrupted, repair_campaign

    if (args.spec is None) == (args.repair is None):
        raise SystemExit("exactly one of --spec NAME or --repair NETLIST")
    if args.processes is not None and args.processes < 1:
        raise SystemExit(f"--processes must be >= 1, got {args.processes}")
    if args.timeout is not None and args.timeout <= 0:
        raise SystemExit(
            f"--timeout must be a positive number of seconds, "
            f"got {args.timeout:g}"
        )
    if args.resume and args.checkpoint is None:
        raise SystemExit("--resume requires --checkpoint PATH")
    if args.population < 2:
        raise SystemExit(f"--population must be >= 2, got {args.population}")
    if args.generations < 1:
        raise SystemExit(
            f"--generations must be >= 1, got {args.generations}"
        )
    common = dict(
        seed=args.seed,
        population=args.population,
        generations=args.generations,
        budget=args.budget,
        max_gates=args.max_gates,
        processes=args.processes,
        timeout=args.timeout,
        transport=args.transport,
        checkpoint=args.checkpoint,
        resume=args.resume,
        abort_after_generations=args.abort_after_generations,
    )
    try:
        if args.repair is not None:
            campaign = repair_campaign(
                _load(args.repair), damage=args.damage, **common
            )
        else:
            spec = SPECS.get(args.spec)
            if spec is None:
                raise SystemExit(
                    f"unknown spec {args.spec!r}; known: "
                    + ", ".join(sorted(SPECS))
                )
            campaign = SynthCampaign(spec, **common)
        with _telemetry(args):
            report = campaign.run()
    except (CheckpointError, ValueError) as error:
        raise SystemExit(str(error))
    except SynthInterrupted as error:
        raise SystemExit(str(error))
    except CampaignCancelled as error:
        raise SystemExit(f"cancelled: {error}")
    if args.json:
        data = report.to_dict()
        if not args.report:
            data.pop("history")
        print(json.dumps(data, sort_keys=True))
    else:
        print(report.summary())
        if args.report:
            for row in report.history:
                print(
                    f"  gen {row['generation']:>3}: "
                    f"best={row['best_score']:.4f} "
                    f"gen_best={row['gen_best_score']:.4f} "
                    f"mean={row['mean_score']:.4f} "
                    f"pareto={row['pareto']}"
                )
    if args.out and report.best_record.perfect:
        from .synth import Genome

        winner = Genome.from_json(report.best_genome).to_network(
            campaign.spec.input_names, name=f"synth_{report.spec}"
        )
        save_bench(winner, args.out, header="synthesized by repro synth")
        print(f"wrote {args.out}")
    return 0 if report.best_record.perfect else 1


def cmd_fuzz(args: argparse.Namespace) -> int:
    from .qa import fuzz, property_names
    from .qa.chaos import bug_names

    if args.list:
        from .qa import PROPERTIES

        for name in property_names():
            print(f"{name}: {PROPERTIES[name].description}")
        return 0
    if args.chaos is not None and args.chaos not in bug_names():
        raise SystemExit(
            f"unknown chaos bug {args.chaos!r}; known: "
            + ", ".join(bug_names())
        )
    try:
        with _telemetry(args):
            report = fuzz(
                seed=args.seed,
                budget=args.budget,
                properties=args.property or None,
                shrink=not args.no_shrink,
                artifact_dir=(
                    None if args.artifact_dir == "none" else args.artifact_dir
                ),
                chaos_bug=args.chaos,
            )
    except KeyError as error:
        raise SystemExit(str(error))
    print(report.summary())
    return 0 if report.ok else 1


def cmd_worker(args: argparse.Namespace) -> int:
    from .engine.transport.socket import run_worker

    return run_worker(args.connect)


def cmd_serve(args: argparse.Namespace) -> int:
    from .server import serve

    return serve(
        host=args.host,
        port=args.port,
        processes=args.processes,
        transport=args.transport,
        workers=args.workers,
        queue_limit=args.queue_limit,
        deadline_s=args.deadline_s,
        drain_timeout=args.drain_timeout,
        state_dir=args.state_dir,
        recover=args.recover,
        max_jobs=args.max_jobs,
        read_timeout=args.read_timeout,
    )


def cmd_stats(args: argparse.Namespace) -> int:
    import json

    from . import obs
    from .obs.stats import render, summarize

    try:
        events = list(obs.read_flight(args.flight))
    except obs.FlightRecorderError as error:
        raise SystemExit(str(error))
    except OSError as error:
        raise SystemExit(f"cannot read {args.flight}: {error}")
    summary = summarize(events)
    if args.json:
        print(json.dumps(summary, sort_keys=True))
    else:
        print(render(summary))
    return 0


def build_parser() -> argparse.ArgumentParser:
    parser = argparse.ArgumentParser(
        prog="repro",
        description="Self-checking alternating logic tools (Woodard & "
        "Metze, ISCA 1978)",
    )
    sub = parser.add_subparsers(dest="command", required=True)

    p = sub.add_parser("analyze", help="run Algorithm 3.1 on a .bench file")
    p.add_argument("netlist")
    p.add_argument("--oracle", action="store_true",
                   help="also run the exhaustive single-fault oracle")
    p.add_argument("--listing", action="store_true",
                   help="print the annotated netlist listing")
    p.set_defaults(func=cmd_analyze)

    p = sub.add_parser("testgen", help="derive alternating test pairs")
    p.add_argument("netlist")
    p.add_argument("--output", default=None,
                   help="restrict to one output (truth-table route)")
    p.add_argument("--structural", action="store_true",
                   help="force the PODEM route")
    p.set_defaults(func=cmd_testgen)

    p = sub.add_parser("repair", help="make the network self-checking")
    p.add_argument("netlist")
    p.add_argument("--out", default=None, help="write the repaired .bench")
    p.set_defaults(func=cmd_repair)

    p = sub.add_parser("minority", help="convert NAND/NOR to minority modules")
    p.add_argument("netlist")
    p.add_argument("--out", default=None, help="write the converted .bench")
    p.set_defaults(func=cmd_minority)

    p = sub.add_parser("dot", help="Graphviz export (failing lines in red)")
    p.add_argument("netlist")
    p.add_argument("--out", default=None)
    p.set_defaults(func=cmd_dot)

    p = sub.add_parser("faulttable", help="Figure 3.6-style fault table")
    p.add_argument("netlist")
    p.add_argument("faults", nargs="+",
                   help="fault specs like nab/0 or_ab/1")
    p.set_defaults(func=cmd_faulttable)

    p = sub.add_parser(
        "campaign",
        help="bulk single-fault coverage sweep (heuristic backend choice)",
    )
    p.add_argument("netlist")
    p.add_argument("--backend", default="auto",
                   choices=["auto", "bitmask", "vectorized", "fallback",
                            "kernel"],
                   help="sweep backend (default: auto heuristic; kernel "
                   "= codegen'd specialized sweep kernels, degrades to "
                   "vectorized/fallback when unavailable)")
    p.add_argument("--processes", type=int, default=None,
                   help="fan out across this many supervised worker lanes")
    p.add_argument("--transport", default="auto",
                   choices=["auto", "inline", "fork", "fork+shm", "socket"],
                   help="execution transport for the fan-out (default: "
                   "auto — fork+shm when --processes > 1)")
    p.add_argument("--timeout", type=float, default=None, metavar="SECONDS",
                   help="per-chunk timeout; hung chunks are killed and "
                   "retried (default: no timeout)")
    p.add_argument("--checkpoint", default=None, metavar="PATH",
                   help="record completed chunks to this JSON artifact "
                   "after each chunk")
    p.add_argument("--resume", action="store_true",
                   help="reload --checkpoint and re-simulate only the "
                   "uncovered remainder")
    p.add_argument("--report", action="store_true",
                   help="print (or, with --json, embed) the structured "
                   "campaign report: backend, degradations, retries")
    p.add_argument("--no-collapse", action="store_true",
                   help="sweep the raw fault universe (no equivalence "
                   "collapsing)")
    p.add_argument("--json", action="store_true",
                   help="emit the coverage stats as one JSON object")
    p.add_argument("--metrics-out", default=None, metavar="FILE",
                   help="write the metrics snapshot here (Prometheus "
                   "text, or JSON when FILE ends in .json)")
    p.add_argument("--trace-out", default=None, metavar="FILE",
                   help="record the campaign flight (JSONL) here; "
                   "render it with 'repro stats FILE'")
    p.set_defaults(func=cmd_campaign)

    p = sub.add_parser(
        "atpg",
        help="fault-dropping PODEM campaign (compacted test sets)",
    )
    p.add_argument("netlist")
    p.add_argument("--backend", default="auto",
                   choices=["auto", "vectorized", "fallback", "pointwise"],
                   help="pattern-simulation rung (default: auto; failures "
                   "degrade vectorized -> fallback -> pointwise)")
    p.add_argument("--candidates", type=int, default=8,
                   help="PODEM completion candidates simulated per "
                   "target (default 8)")
    p.add_argument("--pairs", action="store_true",
                   help="generate alternating SCAL pairs (X, X̄) instead "
                   "of single vectors")
    p.add_argument("--timeout", type=float, default=None, metavar="SECONDS",
                   help="per-target PODEM deadline; overruns are "
                   "classified aborted (default: none)")
    p.add_argument("--max-backtracks", type=int, default=2000,
                   help="PODEM backtrack budget per target (default 2000)")
    p.add_argument("--seed", type=int, default=0,
                   help="candidate-completion seed (default 0)")
    p.add_argument("--no-collapse", action="store_true",
                   help="target the raw stem-fault universe (no "
                   "equivalence collapsing)")
    p.add_argument("--no-drop", action="store_true",
                   help="disable fault dropping: one PODEM search per "
                   "fault (the scalar-parity reference mode)")
    p.add_argument("--no-compact", action="store_true",
                   help="keep every generated pattern (skip the "
                   "reverse-greedy compaction pass)")
    p.add_argument("--report", action="store_true",
                   help="also print the pattern set with per-pattern "
                   "coverage and the undetected classifications")
    p.add_argument("--json", action="store_true",
                   help="emit the report as one JSON object (full "
                   "classifications with --report)")
    p.add_argument("--metrics-out", default=None, metavar="FILE",
                   help="write the metrics snapshot here (Prometheus "
                   "text, or JSON when FILE ends in .json)")
    p.add_argument("--trace-out", default=None, metavar="FILE",
                   help="record the ATPG flight (JSONL) here; render "
                   "it with 'repro stats FILE'")
    p.set_defaults(func=cmd_atpg)

    p = sub.add_parser(
        "synth",
        help="evolve/repair a network toward self-duality + self-checking",
    )
    p.add_argument("--spec", default=None, metavar="NAME",
                   help="synthesize a built-in seed-circuit spec from "
                   "scratch (and2, or2, xor2, maj3)")
    p.add_argument("--repair", default=None, metavar="NETLIST",
                   help="repair mode: damage this .bench network with "
                   "--damage seeded mutations, then evolve it back to "
                   "self-checking against its own tables")
    p.add_argument("--seed", type=int, default=0,
                   help="campaign seed (default 0)")
    p.add_argument("--population", type=int, default=24,
                   help="population size (default 24)")
    p.add_argument("--generations", type=int, default=60,
                   help="generation cap (default 60)")
    p.add_argument("--budget", type=int, default=None,
                   help="cap on total fitness evaluations (default: none)")
    p.add_argument("--max-gates", type=int, default=16,
                   help="genome size bound (default 16)")
    p.add_argument("--damage", type=int, default=3,
                   help="seeded mutations injected in --repair mode "
                   "(default 3)")
    p.add_argument("--processes", type=int, default=None,
                   help="fan generation batches across this many "
                   "supervised worker lanes")
    p.add_argument("--transport", default="auto",
                   choices=["auto", "inline", "fork", "fork+shm", "socket"],
                   help="execution transport for generation batches")
    p.add_argument("--timeout", type=float, default=None, metavar="SECONDS",
                   help="per-chunk timeout for generation batches")
    p.add_argument("--checkpoint", default=None, metavar="PATH",
                   help="write the full population state here after "
                   "every generation")
    p.add_argument("--resume", action="store_true",
                   help="reload --checkpoint and continue the search "
                   "deterministically")
    p.add_argument("--abort-after-generations", type=int, default=None,
                   metavar="N",
                   help="interrupt after N generations, leaving the "
                   "checkpoint resumable (determinism drills)")
    p.add_argument("--report", action="store_true",
                   help="also print (or, with --json, embed) the "
                   "per-generation fitness trajectory")
    p.add_argument("--json", action="store_true",
                   help="emit the report as one JSON object")
    p.add_argument("--out", default=None, metavar="FILE",
                   help="write the winning network as .bench when the "
                   "search converges")
    p.add_argument("--metrics-out", default=None, metavar="FILE",
                   help="write the metrics snapshot here (Prometheus "
                   "text, or JSON when FILE ends in .json)")
    p.add_argument("--trace-out", default=None, metavar="FILE",
                   help="record the synthesis flight (JSONL) here; "
                   "render it with 'repro stats FILE'")
    p.set_defaults(func=cmd_synth)

    p = sub.add_parser(
        "fuzz",
        help="seeded differential/metamorphic fuzz campaign",
    )
    p.add_argument("--seed", type=int, default=0,
                   help="campaign seed (default 0)")
    p.add_argument("--budget", type=int, default=200,
                   help="total trials split across properties (default 200)")
    p.add_argument("--property", action="append", default=[],
                   metavar="NAME",
                   help="restrict to one property (repeatable)")
    p.add_argument("--artifact-dir", default="qa/artifacts",
                   help="write counterexample artifacts here "
                   "(default: qa/artifacts; 'none' disables)")
    p.add_argument("--no-shrink", action="store_true",
                   help="skip counterexample minimization")
    p.add_argument("--chaos", default=None, metavar="BUG",
                   help="inject a named engine bug (harness self-test)")
    p.add_argument("--list", action="store_true",
                   help="list registered properties and exit")
    p.add_argument("--metrics-out", default=None, metavar="FILE",
                   help="write the metrics snapshot here (Prometheus "
                   "text, or JSON when FILE ends in .json)")
    p.add_argument("--trace-out", default=None, metavar="FILE",
                   help="record the fuzz campaign flight (JSONL) here")
    p.set_defaults(func=cmd_fuzz)

    p = sub.add_parser(
        "stats",
        help="render a flight recorded with --trace-out",
    )
    p.add_argument("flight", help="flight JSONL written by --trace-out")
    p.add_argument("--json", action="store_true",
                   help="emit the summary as one JSON object")
    p.set_defaults(func=cmd_stats)

    p = sub.add_parser(
        "serve",
        help="campaign service: queue, dedup, and stream sweeps over HTTP",
    )
    p.add_argument("--host", default="127.0.0.1",
                   help="bind address (default 127.0.0.1)")
    p.add_argument("--port", type=int, default=8341,
                   help="bind port; 0 picks a free one (default 8341)")
    p.add_argument("--processes", type=int, default=None,
                   help="worker lanes per campaign (default: in-process)")
    p.add_argument("--transport", default="auto",
                   choices=["auto", "inline", "fork", "fork+shm", "socket"],
                   help="execution transport for served campaigns")
    p.add_argument("--workers", type=int, default=2,
                   help="concurrent campaign worker threads (default 2)")
    p.add_argument("--queue", type=int, default=8, dest="queue_limit",
                   help="accepted jobs allowed to wait beyond the worker "
                        "pool before shedding 429 (default 8)")
    p.add_argument("--deadline", type=float, default=None, dest="deadline_s",
                   metavar="SECONDS",
                   help="default per-campaign deadline; requests may set "
                        "their own deadline_s (default: none)")
    p.add_argument("--drain-timeout", type=float, default=10.0,
                   metavar="SECONDS",
                   help="grace for in-flight campaigns on SIGTERM/SIGINT "
                        "before they are cancelled (default 10)")
    p.add_argument("--state-dir", default=None, metavar="DIR",
                   help="journal accepted requests (fsync'd JSONL WAL) and "
                        "campaign checkpoints under DIR")
    p.add_argument("--recover", action="store_true",
                   help="on startup, replay journaled requests that never "
                        "finished, resuming from their checkpoints "
                        "(requires --state-dir)")
    p.add_argument("--max-jobs", type=int, default=64,
                   help="finished-job LRU size; older results still replay "
                        "from the content-addressed store (default 64)")
    p.add_argument("--read-timeout", type=float, default=10.0,
                   metavar="SECONDS",
                   help="per-connection header/body read timeout; slower "
                        "clients get 408 (default 10)")
    p.set_defaults(func=cmd_serve)

    p = sub.add_parser(
        "worker",
        help="socket-transport worker lane (spawned by the supervisor)",
    )
    p.add_argument("--connect", required=True, metavar="SPEC",
                   help="supervisor address: unix:PATH or tcp:HOST:PORT")
    p.set_defaults(func=cmd_worker)
    return parser


def main(argv: Optional[List[str]] = None) -> int:
    parser = build_parser()
    args = parser.parse_args(argv)
    return args.func(args)


if __name__ == "__main__":  # pragma: no cover - exercised via tests
    sys.exit(main())
