"""Process-local metrics registry: counters, gauges, histograms.

The registry is dependency-free and built for one discipline: **one
branch per event when disabled**.  Every metric holds a reference to
its registry and checks ``registry.enabled`` before touching any
state, so an instrumented hot path that nobody is watching pays a
single attribute load and a branch.  Hot loops that cannot even afford
the call can hoist the same check (``if REGISTRY.enabled: ...``) — the
flag is a plain bool, mutated only by the CLI/bench set-up code.

Exports:

* :meth:`Registry.to_prometheus` — the Prometheus text exposition
  format (``# HELP`` / ``# TYPE`` headers, ``name{label="v"} value``
  samples, ``_bucket``/``_sum``/``_count`` histogram series);
* :meth:`Registry.to_json` — a machine-readable snapshot embedded in
  bench artifacts and ``--metrics-out foo.json``;
* :func:`parse_prometheus` — a strict line-format parser used by the
  round-trip tests and the CI telemetry smoke job, so the exposition
  output is validated against the same grammar it claims to speak.

Metrics are process-local: a forked campaign worker increments its own
copy, which dies with it.  Campaign-level counts are therefore
incremented by the supervising parent at chunk completion, and the
per-chunk detail travels as flight-recorder events over the worker's
result channel (see :mod:`repro.obs.recorder`).
"""

from __future__ import annotations

import json
import re
from bisect import bisect_left
from typing import Dict, List, Optional, Sequence, Tuple

#: Default histogram bucket upper bounds (seconds-flavored; +Inf is
#: implicit as the final overflow bucket).
DEFAULT_BUCKETS = (
    0.001, 0.005, 0.01, 0.025, 0.05, 0.1, 0.25, 0.5, 1.0, 2.5, 5.0, 10.0,
)

_LabelKey = Tuple[Tuple[str, str], ...]


def _label_key(labels: Dict[str, object]) -> _LabelKey:
    return tuple(sorted((k, str(v)) for k, v in labels.items()))


def _escape(value: str) -> str:
    return value.replace("\\", "\\\\").replace('"', '\\"').replace("\n", "\\n")


def _format_labels(key: _LabelKey, extra: Optional[Tuple[str, str]] = None) -> str:
    pairs = list(key)
    if extra is not None:
        pairs.append(extra)
    if not pairs:
        return ""
    inner = ",".join(f'{name}="{_escape(value)}"' for name, value in pairs)
    return "{" + inner + "}"


def _format_value(value: float) -> str:
    if value == float("inf"):
        return "+Inf"
    if isinstance(value, float) and value.is_integer():
        return str(int(value))
    return repr(value)


_NAME_RE = re.compile(r"[a-zA-Z_:][a-zA-Z0-9_:]*$")


class Counter:
    """A monotonically increasing sum, optionally split by labels."""

    kind = "counter"

    def __init__(self, registry: "Registry", name: str, help: str) -> None:
        self._registry = registry
        self.name = name
        self.help = help
        self._values: Dict[_LabelKey, float] = {}

    def inc(self, value: float = 1.0, **labels) -> None:
        if not self._registry.enabled:
            return
        if value < 0:
            raise ValueError(f"counter {self.name} cannot decrease by {value}")
        key = _label_key(labels)
        self._values[key] = self._values.get(key, 0.0) + value

    def total(self) -> float:
        """Sum across every label set (anomaly gates, tests)."""
        return sum(self._values.values())

    def samples(self) -> List[dict]:
        return [
            {"labels": dict(key), "value": value}
            for key, value in sorted(self._values.items())
        ]

    def _lines(self) -> List[str]:
        return [
            f"{self.name}{_format_labels(key)} {_format_value(value)}"
            for key, value in sorted(self._values.items())
        ]


class Gauge(Counter):
    """A value that can go anywhere (last write wins per label set)."""

    kind = "gauge"

    def set(self, value: float, **labels) -> None:
        if not self._registry.enabled:
            return
        self._values[_label_key(labels)] = float(value)

    def inc(self, value: float = 1.0, **labels) -> None:
        if not self._registry.enabled:
            return
        key = _label_key(labels)
        self._values[key] = self._values.get(key, 0.0) + value


class Histogram:
    """Cumulative-bucket histogram with fixed upper bounds."""

    kind = "histogram"

    def __init__(
        self,
        registry: "Registry",
        name: str,
        help: str,
        buckets: Sequence[float] = DEFAULT_BUCKETS,
    ) -> None:
        if not buckets:
            raise ValueError(f"histogram {name} needs at least one bucket")
        bounds = tuple(float(b) for b in buckets)
        if list(bounds) != sorted(set(bounds)):
            raise ValueError(
                f"histogram {name} buckets must be strictly increasing: "
                f"{buckets!r}"
            )
        self._registry = registry
        self.name = name
        self.help = help
        self.bounds = bounds
        # per label set: (per-bucket counts incl. +Inf overflow, sum, count)
        self._values: Dict[_LabelKey, List] = {}

    def observe(self, value: float, **labels) -> None:
        if not self._registry.enabled:
            return
        key = _label_key(labels)
        state = self._values.get(key)
        if state is None:
            state = [[0] * (len(self.bounds) + 1), 0.0, 0]
            self._values[key] = state
        state[0][bisect_left(self.bounds, value)] += 1
        state[1] += value
        state[2] += 1

    def total(self) -> float:
        return float(sum(state[2] for state in self._values.values()))

    def samples(self) -> List[dict]:
        out: List[dict] = []
        for key, (counts, total, count) in sorted(self._values.items()):
            cumulative = 0
            buckets = []
            for bound, n in zip(self.bounds, counts):
                cumulative += n
                buckets.append([bound, cumulative])
            buckets.append(["+Inf", cumulative + counts[-1]])
            out.append(
                {
                    "labels": dict(key),
                    "buckets": buckets,
                    "sum": total,
                    "count": count,
                }
            )
        return out

    def _lines(self) -> List[str]:
        lines: List[str] = []
        for sample in self.samples():
            key = _label_key(sample["labels"])
            for bound, cumulative in sample["buckets"]:
                le = "+Inf" if bound == "+Inf" else _format_value(float(bound))
                lines.append(
                    f"{self.name}_bucket{_format_labels(key, ('le', le))} "
                    f"{cumulative}"
                )
            lines.append(
                f"{self.name}_sum{_format_labels(key)} "
                f"{_format_value(sample['sum'])}"
            )
            lines.append(
                f"{self.name}_count{_format_labels(key)} {sample['count']}"
            )
        return lines


class Registry:
    """Get-or-create home of every metric in one process.

    ``enabled`` defaults to ``False``: metric *objects* are created at
    module import by instrumented code, but no sample is ever recorded
    until something (``--metrics-out``, the bench harness) flips the
    flag.  Creating a metric twice with the same name returns the same
    object; reusing a name across kinds is a programming error.
    """

    def __init__(self, enabled: bool = False) -> None:
        self.enabled = enabled
        self._metrics: Dict[str, object] = {}

    def _get(self, cls, name: str, help: str, **kwargs):
        if not _NAME_RE.match(name):
            raise ValueError(f"invalid metric name {name!r}")
        metric = self._metrics.get(name)
        if metric is None:
            metric = cls(self, name, help, **kwargs)
            self._metrics[name] = metric
        elif not isinstance(metric, cls) or type(metric) is not cls:
            raise ValueError(
                f"metric {name!r} already registered as {metric.kind}"
            )
        return metric

    def counter(self, name: str, help: str = "") -> Counter:
        return self._get(Counter, name, help)

    def gauge(self, name: str, help: str = "") -> Gauge:
        return self._get(Gauge, name, help)

    def histogram(
        self,
        name: str,
        help: str = "",
        buckets: Sequence[float] = DEFAULT_BUCKETS,
    ) -> Histogram:
        return self._get(Histogram, name, help, buckets=buckets)

    def reset(self) -> None:
        """Drop every recorded sample (metric objects survive — the
        instrumented modules hold references to them)."""
        for metric in self._metrics.values():
            metric._values.clear()

    def total(self, name: str) -> float:
        """Sum of one metric across label sets; 0.0 when absent."""
        metric = self._metrics.get(name)
        return metric.total() if metric is not None else 0.0

    # ------------------------------------------------------------------
    # exporters
    # ------------------------------------------------------------------
    def to_prometheus(self) -> str:
        """The Prometheus text exposition format (version 0.0.4)."""
        chunks: List[str] = []
        for name in sorted(self._metrics):
            metric = self._metrics[name]
            if metric.help:
                chunks.append(f"# HELP {name} {_escape(metric.help)}")
            chunks.append(f"# TYPE {name} {metric.kind}")
            chunks.extend(metric._lines())
        return "\n".join(chunks) + ("\n" if chunks else "")

    def to_json(self) -> dict:
        """A machine-readable snapshot grouped by metric kind."""
        snapshot: Dict[str, dict] = {
            "counters": {},
            "gauges": {},
            "histograms": {},
        }
        for name in sorted(self._metrics):
            metric = self._metrics[name]
            entry = {"help": metric.help, "samples": metric.samples()}
            if isinstance(metric, Histogram):
                snapshot["histograms"][name] = entry
            elif isinstance(metric, Gauge):
                snapshot["gauges"][name] = entry
            else:
                snapshot["counters"][name] = entry
        return snapshot

    def dumps(self) -> str:
        return json.dumps(self.to_json(), indent=1, sort_keys=True) + "\n"


# ----------------------------------------------------------------------
# exposition-format parser (round-trip tests, CI line check)
# ----------------------------------------------------------------------
_SAMPLE_RE = re.compile(
    r"^(?P<name>[a-zA-Z_:][a-zA-Z0-9_:]*)"
    r"(?:\{(?P<labels>[^{}]*)\})?"
    r"\s+(?P<value>[+-]?(?:\d+\.?\d*(?:[eE][+-]?\d+)?|Inf)|NaN)$"
)
_LABEL_RE = re.compile(r'([a-zA-Z_][a-zA-Z0-9_]*)="((?:[^"\\]|\\.)*)"')


class PrometheusFormatError(ValueError):
    """A line violates the Prometheus text exposition grammar."""


def _parse_value(text: str) -> float:
    if text == "+Inf":
        return float("inf")
    if text == "-Inf":
        return float("-inf")
    return float(text)


def parse_prometheus(text: str) -> Dict[str, Dict[_LabelKey, float]]:
    """Parse exposition text back into ``{name: {label-key: value}}``.

    Strict on purpose: any line that is neither a comment nor a
    well-formed sample raises :class:`PrometheusFormatError` naming the
    offending line, which is exactly what the CI smoke job wants from a
    "line-format check"."""
    samples: Dict[str, Dict[_LabelKey, float]] = {}
    for lineno, raw in enumerate(text.splitlines(), start=1):
        line = raw.strip()
        if not line or line.startswith("#"):
            continue
        match = _SAMPLE_RE.match(line)
        if match is None:
            raise PrometheusFormatError(
                f"line {lineno} is not a valid Prometheus sample: {raw!r}"
            )
        labels: Dict[str, str] = {}
        body = match.group("labels")
        if body:
            consumed = 0
            for pair in _LABEL_RE.finditer(body):
                labels[pair.group(1)] = (
                    pair.group(2)
                    .replace("\\n", "\n")
                    .replace('\\"', '"')
                    .replace("\\\\", "\\")
                )
                consumed += len(pair.group(0))
            stripped = re.sub(r"[,\s]", "", body)
            rebuilt = re.sub(r"[,\s]", "", "".join(
                m.group(0) for m in _LABEL_RE.finditer(body)
            ))
            if stripped != rebuilt:
                raise PrometheusFormatError(
                    f"line {lineno} has malformed labels: {raw!r}"
                )
        samples.setdefault(match.group("name"), {})[
            _label_key(labels)
        ] = _parse_value(match.group("value"))
    return samples
