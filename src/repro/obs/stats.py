"""Render a recorded campaign flight: ``python -m repro stats``.

Reads a flight-recorder JSONL artifact and aggregates it into the
questions an operator actually asks after a campaign:

* where did the time go, per block backend (``sweep.chunk`` spans,
  including the ones merged back from fork workers);
* did the runtime degrade down the ladder, retry, split chunks, or
  replace workers — and why;
* how fast was the sweep end to end (faults/sec from the
  ``campaign.report`` event, whose ``wall_seconds`` is the same number
  the :class:`~repro.engine.supervisor.CampaignReport` carries);
* how did the QA properties fare (``qa.property`` spans: trials,
  counterexamples, pass rate);
* how an ATPG campaign spent its time (``atpg.target`` PODEM spans,
  ``atpg.chunk`` pattern-simulation spans per rung, the closing
  ``atpg.report`` event with drop counts and faults/sec, and any
  ``atpg.degradation`` ladder steps);
* how a synthesis search progressed (``synth.generation`` per-generation
  best/mean fitness trajectory, ``synth.improved`` best-so-far
  replacements, ``synth.batch`` generation-batch spans, and the closing
  ``synth.report`` with convergence and Pareto-front size).

:func:`summarize` returns a plain dict (the ``--json`` output);
:func:`render` formats it for humans.
"""

from __future__ import annotations

from collections import OrderedDict
from typing import Dict, Iterable, List


def summarize(events: Iterable[dict]) -> dict:
    """Aggregate one flight's events into a summary dict."""
    chunk_backends: "OrderedDict[str, dict]" = OrderedDict()
    chunk_spans_ok = 0
    chunk_spans_failed = 0
    qa: "OrderedDict[str, dict]" = OrderedDict()
    atpg_chunks: "OrderedDict[str, dict]" = OrderedDict()
    atpg_targets = {"targets": 0, "wall": 0.0}
    atpg_reports: List[dict] = []
    synth_batches = {"batches": 0, "candidates": 0, "wall": 0.0}
    synth_generations: List[dict] = []
    synth_improvements: List[dict] = []
    synth_reports: List[dict] = []
    degradations: List[dict] = []
    retries: Dict[str, int] = {}
    reports: List[dict] = []
    qa_reports: List[dict] = []
    workers_replaced = 0
    steals = 0
    checkpoint_writes = 0
    pids = set()
    total_events = 0

    for event in events:
        total_events += 1
        pid = event.get("pid")
        if pid is not None:
            pids.add(pid)
        kind = event.get("k")
        name = event.get("name", "")
        attrs = event.get("attrs") or {}
        if kind == "span" and name == "sweep.chunk":
            if event.get("ok"):
                chunk_spans_ok += 1
            else:
                chunk_spans_failed += 1
                continue
            backend = str(attrs.get("backend", "?"))
            entry = chunk_backends.setdefault(
                backend, {"chunks": 0, "faults": 0, "wall": 0.0, "cpu": 0.0}
            )
            entry["chunks"] += 1
            entry["faults"] += int(attrs.get("faults", 0))
            entry["wall"] += float(event.get("wall", 0.0))
            entry["cpu"] += float(event.get("cpu", 0.0))
        elif kind == "span" and name == "qa.property":
            prop = str(attrs.get("property", "?"))
            entry = qa.setdefault(
                prop, {"trials": 0, "counterexamples": 0, "wall": 0.0}
            )
            entry["trials"] += int(attrs.get("trials", 0))
            entry["counterexamples"] += int(attrs.get("counterexamples", 0))
            entry["wall"] += float(event.get("wall", 0.0))
        elif kind == "span" and name == "atpg.chunk":
            backend = str(attrs.get("backend", "?"))
            entry = atpg_chunks.setdefault(
                backend,
                {"chunks": 0, "patterns": 0, "faults": 0, "wall": 0.0},
            )
            entry["chunks"] += 1
            entry["patterns"] += int(attrs.get("patterns", 0))
            entry["faults"] += int(attrs.get("faults", 0))
            entry["wall"] += float(event.get("wall", 0.0))
        elif kind == "span" and name == "atpg.target":
            atpg_targets["targets"] += 1
            atpg_targets["wall"] += float(event.get("wall", 0.0))
        elif kind == "event" and name == "atpg.report":
            atpg_reports.append(attrs)
        elif kind == "span" and name == "synth.batch":
            synth_batches["batches"] += 1
            synth_batches["candidates"] += int(attrs.get("candidates", 0))
            synth_batches["wall"] += float(event.get("wall", 0.0))
        elif kind == "event" and name == "synth.generation":
            synth_generations.append(attrs)
        elif kind == "event" and name == "synth.improved":
            synth_improvements.append(attrs)
        elif kind == "event" and name == "synth.report":
            synth_reports.append(attrs)
        elif kind == "event" and name in (
            "campaign.degradation",
            "atpg.degradation",
        ):
            degradations.append(attrs)
        elif kind == "event" and name == "campaign.retry":
            action = str(attrs.get("action", "?"))
            retries[action] = retries.get(action, 0) + 1
        elif kind == "event" and name == "campaign.worker_replaced":
            workers_replaced += 1
        elif kind == "event" and name == "campaign.steal":
            steals += 1
        elif kind == "event" and name == "campaign.checkpoint":
            checkpoint_writes += 1
        elif kind == "event" and name == "campaign.report":
            reports.append(attrs)
        elif kind == "event" and name == "qa.report":
            qa_reports.append(attrs)

    for entry in chunk_backends.values():
        entry["faults_per_second"] = (
            entry["faults"] / entry["wall"] if entry["wall"] > 0 else None
        )
    for entry in qa.values():
        entry["pass_rate"] = (
            (entry["trials"] - entry["counterexamples"]) / entry["trials"]
            if entry["trials"]
            else None
        )
    campaigns = []
    for report in reports:
        wall = report.get("wall_seconds") or 0.0
        faults = report.get("faults") or 0
        campaigns.append(
            dict(
                report,
                faults_per_second=(faults / wall if wall > 0 else None),
            )
        )
    atpg_runs = []
    for report in atpg_reports:
        wall = report.get("wall_seconds") or 0.0
        faults = report.get("faults") or 0
        atpg_runs.append(
            dict(
                report,
                faults_per_second=(faults / wall if wall > 0 else None),
            )
        )
    synth_runs = []
    for report in synth_reports:
        wall = report.get("wall_seconds") or 0.0
        evaluations = report.get("evaluations") or 0
        synth_runs.append(
            dict(
                report,
                evaluations_per_second=(
                    evaluations / wall if wall > 0 else None
                ),
            )
        )
    return {
        "events": total_events,
        "processes": len(pids),
        "campaigns": campaigns,
        "atpg_runs": atpg_runs,
        "synth_runs": synth_runs,
        "synth_batches": synth_batches,
        "synth_generations": synth_generations,
        "synth_improvements": synth_improvements,
        "atpg_targets": atpg_targets,
        "atpg_chunks": dict(atpg_chunks),
        "chunk_spans": {"ok": chunk_spans_ok, "failed": chunk_spans_failed},
        "chunk_backends": dict(chunk_backends),
        "degradations": degradations,
        "retries": retries,
        "workers_replaced": workers_replaced,
        "steals": steals,
        "checkpoint_writes": checkpoint_writes,
        "qa_properties": dict(qa),
        "qa_reports": qa_reports,
    }


def _rate(value) -> str:
    return f"{value:,.0f} faults/s" if value else "n/a"


def render(summary: dict) -> str:
    """Human-readable rendering of :func:`summarize`'s output."""
    lines = [
        f"flight: {summary['events']} events from "
        f"{summary['processes']} process(es)"
    ]
    for report in summary["campaigns"]:
        lines.append(
            f"campaign: {report.get('faults', 0)} faults via "
            f"{report.get('backend', '?')} (requested "
            f"{report.get('requested', '?')}) in "
            f"{report.get('wall_seconds', 0.0):.3f}s "
            f"({_rate(report.get('faults_per_second'))})"
        )
        lines.append(
            f"  chunks: {report.get('chunks_completed', 0)} simulated, "
            f"{report.get('chunks_resumed', 0)} resumed of "
            f"{report.get('chunks_total', 0)}"
        )
    for report in summary.get("atpg_runs", ()):
        lines.append(
            f"atpg: {report.get('circuit', '?')}: "
            f"{report.get('detected', 0)}/{report.get('faults', 0)} detected "
            f"via {report.get('backend', '?')}, "
            f"{report.get('redundant', 0)} redundant, "
            f"{report.get('aborted', 0)} aborted, "
            f"{report.get('dropped', 0)} dropped, "
            f"{report.get('patterns_kept', 0)} patterns in "
            f"{report.get('wall_seconds', 0.0):.3f}s "
            f"({_rate(report.get('faults_per_second'))})"
        )
    for report in summary.get("synth_runs", ()):
        rate = report.get("evaluations_per_second")
        lines.append(
            f"synth: {report.get('mode', 'synth')} spec="
            f"{report.get('spec', '?')} seed={report.get('seed', '?')}: "
            f"{report.get('generations', 0)} generations, "
            f"{report.get('evaluations', 0)} evaluations, "
            f"best={report.get('best_score', 0.0):.4f} "
            f"converged={'yes' if report.get('converged') else 'no'}, "
            f"{report.get('pareto', 0)} pareto point(s) in "
            f"{report.get('wall_seconds', 0.0):.3f}s"
            + (f" ({rate:,.0f} evals/s)" if rate else "")
        )
    generations = summary.get("synth_generations") or []
    if generations:
        first = generations[0]
        last = generations[-1]
        lines.append(
            f"synth trajectory: {len(generations)} generation(s), "
            f"best {first.get('best_score', 0.0):.4f} -> "
            f"{last.get('best_score', 0.0):.4f}, "
            f"{len(summary.get('synth_improvements') or [])} improvement(s)"
        )
        for improved in summary.get("synth_improvements") or []:
            lines.append(
                f"  gen {improved.get('generation', '?')}: "
                f"score={improved.get('score', 0.0):.4f} "
                f"gates={improved.get('gates', '?')} "
                f"cost={improved.get('cost', 0.0):g} "
                f"dangerous={improved.get('dangerous', '?')} "
                f"[{str(improved.get('fingerprint', ''))[:12]}]"
            )
    batches = summary.get("synth_batches") or {}
    if batches.get("batches"):
        lines.append(
            f"synth batches: {batches['batches']} generation batch(es), "
            f"{batches['candidates']} candidates, "
            f"{batches['wall']:.3f}s wall"
        )
    targets = summary.get("atpg_targets") or {}
    if targets.get("targets"):
        lines.append(
            f"atpg targets: {targets['targets']} PODEM searches, "
            f"{targets['wall']:.3f}s wall"
        )
    if summary.get("atpg_chunks"):
        lines.append("atpg pattern-simulation time:")
        for backend, entry in summary["atpg_chunks"].items():
            lines.append(
                f"  {backend}: {entry['chunks']} chunks, "
                f"{entry['patterns']} patterns x {entry['faults']} faults, "
                f"{entry['wall']:.3f}s wall"
            )
    spans = summary["chunk_spans"]
    if spans["ok"] or spans["failed"]:
        lines.append(
            f"chunk spans: {spans['ok']} ok, {spans['failed']} failed"
        )
    if summary["chunk_backends"]:
        lines.append("per-backend chunk time:")
        for backend, entry in summary["chunk_backends"].items():
            lines.append(
                f"  {backend}: {entry['chunks']} chunks, "
                f"{entry['faults']} faults, {entry['wall']:.3f}s wall, "
                f"{entry['cpu']:.3f}s cpu ({_rate(entry['faults_per_second'])})"
            )
    if summary["retries"]:
        total = sum(summary["retries"].values())
        detail = ", ".join(
            f"{action} {count}"
            for action, count in sorted(summary["retries"].items())
        )
        lines.append(f"retries: {total} ({detail})")
    if summary["workers_replaced"]:
        lines.append(f"workers replaced: {summary['workers_replaced']}")
    if summary.get("steals"):
        lines.append(f"chunks stolen by idle lanes: {summary['steals']}")
    if summary["checkpoint_writes"]:
        lines.append(f"checkpoint writes: {summary['checkpoint_writes']}")
    if summary["degradations"]:
        lines.append("degradations:")
        for deg in summary["degradations"]:
            lines.append(
                f"  {deg.get('frm', '?')} -> {deg.get('to', '?')}: "
                f"{deg.get('reason', '')}"
            )
    elif summary["campaigns"]:
        lines.append("no degradations")
    if summary["qa_properties"]:
        lines.append("QA properties:")
        for prop, entry in summary["qa_properties"].items():
            rate = entry["pass_rate"]
            shown = f"{rate:.1%} pass" if rate is not None else "no trials"
            lines.append(
                f"  {prop}: {entry['trials']} trials, "
                f"{entry['counterexamples']} counterexample(s), "
                f"{entry['wall']:.3f}s ({shown})"
            )
    return "\n".join(lines)
