"""Telemetry: metrics registry, tracing spans, campaign flight recorder.

A dependency-free observability layer with one hard contract: **when
nothing is watching, instrumented code pays one branch per event**.
Three cooperating pieces:

* :data:`REGISTRY` — the process-local metrics registry
  (:mod:`repro.obs.metrics`): counters, gauges, fixed-bucket
  histograms, exported as Prometheus text or JSON.  Disabled by
  default; ``python -m repro campaign --metrics-out FILE`` (and the
  bench harness) enable it.
* :func:`span` / :func:`event` — tracing (:mod:`repro.obs.trace`):
  nested timed regions and discrete occurrences, serialized to the
  active flight recorder.  No recorder (the default) means a shared
  no-op span and an immediate return.
* :class:`FlightRecorder` — one campaign's JSONL event log
  (:mod:`repro.obs.recorder`), fork-safe: events produced inside a
  supervised fork worker are buffered and merged into the parent's
  flight through the chunk-result channel, so a single artifact holds
  the whole story.  ``python -m repro stats FLIGHT`` renders it.

Instrumented seams: the engine backends (op/word counters, block
sizes), :func:`repro.engine.vectorized.chunk_statuses` (the per-chunk
``sweep.chunk`` span every ladder rung classifies through),
:mod:`repro.engine.supervisor` (chunk completions, retries, worker
replacements, work steals, checkpoint writes, the campaign wall-clock
stopwatch), :mod:`repro.engine.store` (artifact hits/misses/evictions),
:mod:`repro.server` (request/job/subscriber counters behind
``GET /metrics``),
:class:`repro.engine.campaign.FaultSweep` (sweep-level spans), and
:mod:`repro.qa.runner` (per-property spans and trial verdicts).
"""

from __future__ import annotations

import contextlib
from typing import Iterator, Optional

from .metrics import (
    Counter,
    Gauge,
    Histogram,
    PrometheusFormatError,
    Registry,
    parse_prometheus,
)
from .recorder import (
    FlightRecorder,
    FlightRecorderError,
    MemoryRecorder,
    read_flight,
)
from .trace import (
    NOOP_SPAN,
    Span,
    Stopwatch,
    drain_child_events,
    event,
    get_recorder,
    set_recorder,
    span,
    tracing_enabled,
)

#: The process-wide default registry every instrumented module records
#: into.  ``REGISTRY.enabled`` is the single disabled-telemetry branch.
REGISTRY = Registry(enabled=False)


def metrics_enabled() -> bool:
    return REGISTRY.enabled


def enable_metrics(enabled: bool = True) -> None:
    REGISTRY.enabled = enabled


def reset() -> None:
    """Return telemetry to its boot state (tests, bench isolation):
    metrics disabled and cleared, no active recorder."""
    REGISTRY.enabled = False
    REGISTRY.reset()
    set_recorder(None)


@contextlib.contextmanager
def recording(
    trace_path: Optional[str] = None,
    metrics: bool = False,
    recorder=None,
) -> Iterator[Optional[object]]:
    """Enable telemetry for one region (the CLI session seam).

    ``trace_path`` opens a :class:`FlightRecorder` there (``recorder``
    supplies one directly instead); ``metrics=True`` additionally
    enables :data:`REGISTRY`.  On exit the previous recorder and
    metrics flag are restored and any recorder this call opened is
    closed.
    """
    opened = None
    if recorder is None and trace_path is not None:
        opened = recorder = FlightRecorder(trace_path)
    previous_recorder = get_recorder()
    previous_metrics = REGISTRY.enabled
    if recorder is not None:
        set_recorder(recorder)
    if metrics:
        REGISTRY.enabled = True
    try:
        yield recorder
    finally:
        set_recorder(previous_recorder)
        REGISTRY.enabled = previous_metrics
        if opened is not None:
            opened.close()


__all__ = [
    "Counter",
    "FlightRecorder",
    "FlightRecorderError",
    "Gauge",
    "Histogram",
    "MemoryRecorder",
    "NOOP_SPAN",
    "PrometheusFormatError",
    "REGISTRY",
    "Registry",
    "Span",
    "Stopwatch",
    "drain_child_events",
    "enable_metrics",
    "event",
    "get_recorder",
    "metrics_enabled",
    "parse_prometheus",
    "read_flight",
    "recording",
    "reset",
    "set_recorder",
    "span",
    "tracing_enabled",
]
