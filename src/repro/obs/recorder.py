"""The campaign flight recorder: an append-only JSONL event log.

One campaign (or fuzz run) gets one flight: a sequence of JSON objects,
one per line, each either a completed **span** (``"k": "span"`` — name,
start time, wall/CPU duration, pid, parent span, attributes) or a
discrete **event** (``"k": "event"`` — degradations, retries, worker
replacements, checkpoint writes...).  ``python -m repro stats`` renders
a recorded flight; :func:`read_flight` is the parsing seam both share.

**Fork safety.**  A supervised campaign forks workers *after* the
recorder is open, so every child inherits the recorder object — file
descriptor included.  Two rules keep the log uncorrupted:

* every parent-side write is flushed immediately, so a fork never
  duplicates buffered bytes through the child's copy of the file
  object;
* :meth:`FlightRecorder.emit` compares ``os.getpid()`` against the pid
  that opened the file: in a child it never writes, it **buffers**.
  The supervised worker drains that buffer into each chunk result it
  sends back (:func:`repro.obs.drain_child_events`), and the parent
  replays the events into the log verbatim — child pids preserved —
  which is how worker spans appear exactly once in the merged flight.
  A worker killed mid-chunk loses its unsent buffer; the chunk is
  retried elsewhere and the retry's events are merged instead, so a
  partial flight survives as a complete one.
"""

from __future__ import annotations

import json
import os
import time
from typing import Iterator, List, Optional


class FlightRecorderError(ValueError):
    """A flight artifact is unreadable or holds a malformed line."""


class FlightRecorder:
    """JSONL sink bound to the process that opened it."""

    def __init__(self, path: str) -> None:
        self.path = path
        self._pid = os.getpid()
        self._child_buffer: List[dict] = []
        self._handle = open(path, "w")
        self.emit(
            {
                "k": "meta",
                "name": "flight.open",
                "t": time.time(),
                "pid": self._pid,
                "attrs": {"path": path},
            }
        )

    def emit(self, event: dict) -> None:
        """Record one event — or buffer it when running in a fork
        child (drained back to the parent over the result channel)."""
        if os.getpid() != self._pid:
            self._child_buffer.append(event)
            return
        self._handle.write(json.dumps(event, sort_keys=True) + "\n")
        self._handle.flush()

    def drain_child_buffer(self) -> List[dict]:
        """Worker side: hand over (and clear) the buffered events."""
        events, self._child_buffer = self._child_buffer, []
        return events

    def merge(self, events) -> None:
        """Parent side: replay a worker's drained events into the log
        (their ``pid`` fields already identify the source process)."""
        for event in events:
            self.emit(event)

    def close(self) -> None:
        if os.getpid() != self._pid:  # a child never owns the file
            return
        if not self._handle.closed:
            self.emit(
                {
                    "k": "meta",
                    "name": "flight.close",
                    "t": time.time(),
                    "pid": self._pid,
                    "attrs": {},
                }
            )
            self._handle.close()

    def __enter__(self) -> "FlightRecorder":
        return self

    def __exit__(self, *exc) -> None:
        self.close()


class MemoryRecorder:
    """An in-memory recorder for tests: same protocol, no file."""

    def __init__(self) -> None:
        self._pid = os.getpid()
        self._child_buffer: List[dict] = []
        self.events: List[dict] = []

    def emit(self, event: dict) -> None:
        if os.getpid() != self._pid:
            self._child_buffer.append(event)
            return
        self.events.append(event)

    def drain_child_buffer(self) -> List[dict]:
        events, self._child_buffer = self._child_buffer, []
        return events

    def merge(self, events) -> None:
        for event in events:
            self.emit(event)

    def close(self) -> None:
        pass


def read_flight(path: str, limit: Optional[int] = None) -> Iterator[dict]:
    """Yield every event of a recorded flight, validating as it goes."""
    try:
        handle = open(path)
    except OSError as error:
        raise FlightRecorderError(f"cannot read flight {path!r}: {error}")
    with handle:
        for lineno, line in enumerate(handle, start=1):
            if limit is not None and lineno > limit:
                break
            line = line.strip()
            if not line:
                continue
            try:
                event = json.loads(line)
            except ValueError as error:
                raise FlightRecorderError(
                    f"flight {path!r} line {lineno} is not JSON: {error}"
                )
            if not isinstance(event, dict) or "k" not in event:
                raise FlightRecorderError(
                    f"flight {path!r} line {lineno} is not a telemetry "
                    f"event"
                )
            yield event
