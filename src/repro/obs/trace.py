"""Tracing spans: nested, timed, recorded to the active flight.

``with span("sweep.chunk", faults=n):`` wraps a region; on exit one
``"k": "span"`` event is emitted to the active recorder carrying the
wall-clock and CPU time spent inside, the enclosing span's name
(spans nest through a per-thread stack), and the keyword attributes.
An exception propagating out of the region is never swallowed: the
span records ``ok: false`` plus the error text and re-raises.

**Zero overhead when disabled.**  :func:`span` and :func:`event` load
the active recorder and branch — when no recorder is set, :func:`span`
returns a shared no-op context manager and :func:`event` returns
immediately.  No timestamp is taken, no dict is allocated beyond the
caller's kwargs.
"""

from __future__ import annotations

import os
import threading
import time
from typing import Optional


class Stopwatch:
    """A monotonic elapsed-seconds timer.

    The supervised campaign routes its report's ``wall_seconds`` and
    the flight's ``campaign.report`` event through one shared stopwatch
    so the two can never disagree.
    """

    __slots__ = ("started",)

    def __init__(self) -> None:
        self.started = time.perf_counter()

    def elapsed(self) -> float:
        return time.perf_counter() - self.started


class _State:
    __slots__ = ("recorder",)

    def __init__(self) -> None:
        self.recorder = None


_state = _State()
_stack = threading.local()


def set_recorder(recorder) -> None:
    """Install (or, with ``None``, remove) the active flight recorder."""
    _state.recorder = recorder


def get_recorder():
    return _state.recorder


def tracing_enabled() -> bool:
    return _state.recorder is not None


def drain_child_events() -> list:
    """Fork-worker side: the events buffered since the last drain (the
    supervised worker ships these with every chunk result)."""
    recorder = _state.recorder
    if recorder is None:
        return []
    return recorder.drain_child_buffer()


def _current_stack() -> list:
    stack = getattr(_stack, "spans", None)
    if stack is None:
        stack = []
        _stack.spans = stack
    return stack


class Span:
    """One live span; use via :func:`span`, not directly."""

    __slots__ = ("recorder", "name", "attrs", "_t0", "_wall0", "_cpu0")

    def __init__(self, recorder, name: str, attrs: dict) -> None:
        self.recorder = recorder
        self.name = name
        self.attrs = attrs

    def set(self, **attrs) -> None:
        """Attach attributes discovered while the span is running."""
        self.attrs.update(attrs)

    def __enter__(self) -> "Span":
        _current_stack().append(self.name)
        self._t0 = time.time()
        self._wall0 = time.perf_counter()
        self._cpu0 = time.process_time()
        return self

    def __exit__(self, exc_type, exc, _tb) -> bool:
        wall = time.perf_counter() - self._wall0
        cpu = time.process_time() - self._cpu0
        stack = _current_stack()
        if stack and stack[-1] == self.name:
            stack.pop()
        parent: Optional[str] = stack[-1] if stack else None
        record = {
            "k": "span",
            "name": self.name,
            "t": self._t0,
            "wall": wall,
            "cpu": cpu,
            "pid": os.getpid(),
            "parent": parent,
            "ok": exc_type is None,
            "attrs": self.attrs,
        }
        if exc_type is not None:
            record["error"] = f"{exc_type.__name__}: {exc}"
        self.recorder.emit(record)
        return False  # never suppress the exception


class _NoopSpan:
    """The shared disabled span: every operation is a no-op."""

    __slots__ = ()

    def set(self, **attrs) -> None:
        pass

    def __enter__(self) -> "_NoopSpan":
        return self

    def __exit__(self, *exc) -> bool:
        return False


NOOP_SPAN = _NoopSpan()


def span(name: str, **attrs):
    """A context manager timing one named region (or the shared no-op
    when tracing is disabled — one branch, nothing else)."""
    recorder = _state.recorder
    if recorder is None:
        return NOOP_SPAN
    return Span(recorder, name, attrs)


def event(name: str, **attrs) -> None:
    """Record one discrete event on the active flight (one branch and
    an immediate return when tracing is disabled)."""
    recorder = _state.recorder
    if recorder is None:
        return
    recorder.emit(
        {
            "k": "event",
            "name": name,
            "t": time.time(),
            "pid": os.getpid(),
            "attrs": attrs,
        }
    )
