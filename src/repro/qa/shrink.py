"""Greedy counterexample shrinking: smallest case that still fails.

The shrinker repeatedly applies structure-removing transformations to a
failing :class:`~repro.qa.cases.Case` and keeps any candidate on which
the property still fails, restarting greedily until no transformation
helps.  Transformations are ordered most-aggressive first, so the
common outcome — a one-or-two-gate netlist witnessing an engine bug —
is reached in a handful of property evaluations:

* drop gates outside every output cone (one shot),
* bypass a gate (rewire its readers to its first input and delete it),
* drop an output (multi-output cases),
* drop one gate input pin (arity permitting),
* drop an unread primary input,
* halve / single-drop input-vector streams and sampled point lists,
* delete a non-initial machine state (redirecting transitions into the
  initial state).

All network rewrites route sources to topologically *earlier* lines, so
candidates can never introduce combinational cycles; candidates the
:class:`~repro.logic.network.Network` validator still rejects (e.g.
duplicate outputs after rewiring) are simply skipped.
"""

from __future__ import annotations

import dataclasses
from typing import Callable, Iterator, List, Optional, Set

from ..logic.gates import GateArityError, GateKind
from ..logic.network import Gate, Network, NetworkError
from ..seq.machine import StateTable, StateTableError
from .cases import Case

Check = Callable[[Case], Optional[str]]

#: Bypassing never helps for gates that have no inputs to route through.
_SOURCELESS = (GateKind.CONST0, GateKind.CONST1)


def shrink_case(case: Case, check: Check, max_steps: int = 2000) -> Case:
    """The greedy fixpoint: smallest derived case on which ``check``
    still returns a failure message.

    ``max_steps`` bounds the number of candidate evaluations (each one
    runs the full property check) — the greedy loop converges long
    before that on fuzz-scale cases.
    """
    if check(case) is None:
        raise ValueError("shrink_case needs a failing case to start from")
    current = case
    steps = 0
    improved = True
    while improved and steps < max_steps:
        improved = False
        for candidate in _candidates(current):
            steps += 1
            if steps >= max_steps:
                break
            if candidate.size() >= current.size():
                continue
            if check(candidate) is not None:
                current = candidate
                improved = True
                break  # greedy restart from the smaller case
    return current


# ----------------------------------------------------------------------
# candidate generation
# ----------------------------------------------------------------------
def _candidates(case: Case) -> Iterator[Case]:
    if case.network is not None:
        for net in _network_candidates(case.network):
            yield dataclasses.replace(case, network=net)
    if case.vectors is not None and len(case.vectors) > 1:
        for seq in _sequence_candidates(list(case.vectors)):
            yield dataclasses.replace(case, vectors=tuple(seq))
    if case.points is not None and len(case.points) > 1:
        for seq in _sequence_candidates(list(case.points)):
            yield dataclasses.replace(case, points=tuple(seq))
    if case.machine is not None and len(case.machine.states) > 1:
        for machine in _machine_candidates(case.machine):
            yield dataclasses.replace(case, machine=machine)


def _network_candidates(network: Network) -> Iterator[Network]:
    pruned = _drop_dead_gates(network)
    if pruned is not None:
        yield pruned
    # Bypass gates, latest first: downstream structure disappears fastest.
    for gate in reversed(network.gates):
        candidate = _bypass_gate(network, gate)
        if candidate is not None:
            yield candidate
    if len(network.outputs) > 1:
        for out in network.outputs:
            rest = [o for o in network.outputs if o != out]
            try:
                yield network.with_outputs(rest)
            except NetworkError:
                continue
    for gate in network.gates:
        if len(gate.inputs) <= 1:
            continue
        for pin in range(len(gate.inputs)):
            candidate = _drop_pin(network, gate, pin)
            if candidate is not None:
                yield candidate
    yield from _drop_unused_inputs(network)


def _rebuild(
    inputs: List[str], gates: List[Gate], outputs: List[str], name: str
) -> Optional[Network]:
    try:
        return Network(inputs, gates, outputs, name=name)
    except (NetworkError, GateArityError):
        return None


def _drop_dead_gates(network: Network) -> Optional[Network]:
    live: Set[str] = set()
    for out in network.outputs:
        live |= network.cone(out)
    kept = [g for g in network.gates if g.name in live]
    if len(kept) == len(network.gates):
        return None
    return _rebuild(
        list(network.inputs), kept, list(network.outputs), network.name
    )


def _bypass_gate(network: Network, gate: Gate) -> Optional[Network]:
    """Remove ``gate``, rerouting its readers (and output slots) to its
    first input — an earlier line, so acyclicity is preserved."""
    replacement = gate.inputs[0] if gate.inputs else None
    read_by_others = any(
        gate.name in g.inputs for g in network.gates if g.name != gate.name
    )
    if replacement is None and (read_by_others or gate.name in network.outputs):
        return None  # CONST with readers: nothing to route through
    gates = []
    for g in network.gates:
        if g.name == gate.name:
            continue
        if replacement is not None and gate.name in g.inputs:
            srcs = tuple(
                replacement if src == gate.name else src for src in g.inputs
            )
            g = Gate(g.name, g.kind, srcs)
        gates.append(g)
    outputs = [
        replacement if out == gate.name else out for out in network.outputs
    ]
    return _rebuild(list(network.inputs), gates, outputs, network.name)


def _drop_pin(network: Network, gate: Gate, pin: int) -> Optional[Network]:
    srcs = gate.inputs[:pin] + gate.inputs[pin + 1 :]
    try:
        slimmer = Gate(gate.name, gate.kind, srcs)
    except GateArityError:
        return None
    gates = [slimmer if g.name == gate.name else g for g in network.gates]
    return _rebuild(
        list(network.inputs), gates, list(network.outputs), network.name
    )


def _drop_unused_inputs(network: Network) -> Iterator[Network]:
    read: Set[str] = set()
    for g in network.gates:
        read |= set(g.inputs)
    for name in network.inputs:
        if name in read or name in network.outputs:
            continue
        inputs = [i for i in network.inputs if i != name]
        if not inputs:
            continue
        candidate = _rebuild(
            inputs, list(network.gates), list(network.outputs), network.name
        )
        if candidate is not None:
            yield candidate


def _sequence_candidates(items: List) -> Iterator[List]:
    half = len(items) // 2
    if half:
        yield items[:half]
        yield items[half:]
    for i in range(len(items)):
        yield items[:i] + items[i + 1 :]


def _machine_candidates(machine: StateTable) -> Iterator[StateTable]:
    """Drop one non-initial state, redirecting transitions into the
    initial state (keeps the table completely specified)."""
    for victim in machine.states:
        if victim == machine.initial_state:
            continue
        states = [s for s in machine.states if s != victim]
        table = {}
        for state in states:
            row = {}
            for vector in machine.input_vectors():
                t = machine.transition(state, vector)
                nxt = (
                    machine.initial_state
                    if t.next_state == victim
                    else t.next_state
                )
                row[vector] = (nxt, t.output)
            table[state] = row
        try:
            yield StateTable(
                states,
                machine.n_inputs,
                machine.n_outputs,
                table,
                machine.initial_state,
                name=machine.name,
            )
        except StateTableError:  # pragma: no cover - defensive
            continue
