"""Fuzz cases: the shrinkable, serializable unit the QA harness works on.

A :class:`Case` bundles whatever one property trial quantifies over — a
network, a Mealy machine, an input-vector stream, sampled points, a
determinism seed.  Properties check cases; the shrinker mutates them;
this module round-trips them to JSON artifacts and emits a runnable
pytest reproducer so a minimized counterexample survives the fuzz run
that found it.
"""

from __future__ import annotations

import dataclasses
import json
from typing import Any, Dict, List, Optional, Tuple

from ..logic.gates import GateKind
from ..logic.network import Gate, Network
from ..seq.machine import StateTable


@dataclasses.dataclass(frozen=True)
class Case:
    """One property trial's input data (fields unused by a property stay
    ``None``; the shrinker only mutates the populated ones)."""

    network: Optional[Network] = None
    machine: Optional[StateTable] = None
    vectors: Optional[Tuple[Tuple[int, ...], ...]] = None
    points: Optional[Tuple[int, ...]] = None
    seed: Optional[int] = None

    def size(self) -> int:
        """Shrink metric: smaller is better, gates dominate."""
        total = 0
        if self.network is not None:
            total += 10 * len(self.network.gates)
            total += len(self.network.inputs)
            total += sum(len(g.inputs) for g in self.network.gates)
        if self.machine is not None:
            total += 10 * len(self.machine.states)
        if self.vectors is not None:
            total += len(self.vectors)
        if self.points is not None:
            total += len(self.points)
        return total


# ----------------------------------------------------------------------
# JSON round-trip
# ----------------------------------------------------------------------
def network_to_json(network: Network) -> Dict[str, Any]:
    return {
        "name": network.name,
        "inputs": list(network.inputs),
        "gates": [
            {"name": g.name, "kind": g.kind.value, "inputs": list(g.inputs)}
            for g in network.gates
        ],
        "outputs": list(network.outputs),
    }


def network_from_json(data: Dict[str, Any]) -> Network:
    gates = [
        Gate(g["name"], GateKind(g["kind"]), tuple(g["inputs"]))
        for g in data["gates"]
    ]
    return Network(
        data["inputs"], gates, data["outputs"], name=data.get("name", "network")
    )


def machine_to_json(machine: StateTable) -> Dict[str, Any]:
    table: Dict[str, List[Any]] = {}
    for state in machine.states:
        rows = []
        for vector in machine.input_vectors():
            t = machine.transition(state, vector)
            rows.append([list(vector), t.next_state, list(t.output)])
        table[state] = rows
    return {
        "name": machine.name,
        "states": list(machine.states),
        "n_inputs": machine.n_inputs,
        "n_outputs": machine.n_outputs,
        "initial_state": machine.initial_state,
        "table": table,
    }


def machine_from_json(data: Dict[str, Any]) -> StateTable:
    table: Dict[str, Dict[Tuple[int, ...], Tuple[str, Tuple[int, ...]]]] = {}
    for state, rows in data["table"].items():
        table[state] = {
            tuple(vector): (nxt, tuple(output)) for vector, nxt, output in rows
        }
    return StateTable(
        data["states"],
        data["n_inputs"],
        data["n_outputs"],
        table,
        data["initial_state"],
        name=data.get("name", "machine"),
    )


def case_to_json(case: Case) -> Dict[str, Any]:
    data: Dict[str, Any] = {}
    if case.network is not None:
        data["network"] = network_to_json(case.network)
    if case.machine is not None:
        data["machine"] = machine_to_json(case.machine)
    if case.vectors is not None:
        data["vectors"] = [list(v) for v in case.vectors]
    if case.points is not None:
        data["points"] = list(case.points)
    if case.seed is not None:
        data["seed"] = case.seed
    return data


def case_from_json(data: Dict[str, Any]) -> Case:
    return Case(
        network=(
            network_from_json(data["network"]) if "network" in data else None
        ),
        machine=(
            machine_from_json(data["machine"]) if "machine" in data else None
        ),
        vectors=(
            tuple(tuple(v) for v in data["vectors"])
            if "vectors" in data
            else None
        ),
        points=tuple(data["points"]) if "points" in data else None,
        seed=data.get("seed"),
    )


# ----------------------------------------------------------------------
# counterexample artifact + pytest reproducer
# ----------------------------------------------------------------------
@dataclasses.dataclass(frozen=True)
class Counterexample:
    """A failing trial, before and after shrinking."""

    property_name: str
    seed: int
    trial: int
    detail: str
    case: Case
    shrunk: Case

    def to_json(self) -> Dict[str, Any]:
        return {
            "property": self.property_name,
            "seed": self.seed,
            "trial": self.trial,
            "detail": self.detail,
            "original_size": self.case.size(),
            "shrunk_size": self.shrunk.size(),
            "original_case": case_to_json(self.case),
            "case": case_to_json(self.shrunk),
            "pytest_snippet": pytest_snippet(self.property_name, self.shrunk),
        }

    def dumps(self) -> str:
        return json.dumps(self.to_json(), indent=2, sort_keys=True)


def _network_build_lines(network: Network, var: str) -> List[str]:
    lines = [
        f"builder = NetworkBuilder({list(network.inputs)!r}, "
        f"name={network.name!r})"
    ]
    for g in network.gates:
        lines.append(
            f"builder.add({g.name!r}, GateKind.{g.kind.name}, "
            f"{list(g.inputs)!r})"
        )
    lines.append(f"{var} = builder.build({list(network.outputs)!r})")
    return lines


def pytest_snippet(property_name: str, case: Case) -> str:
    """A self-contained pytest regression test: fails while the bug the
    counterexample witnessed is present, passes once it is fixed."""
    slug = property_name.replace("-", "_")
    body: List[str] = []
    kwargs: List[str] = []
    if case.network is not None:
        body.extend(_network_build_lines(case.network, "network"))
        kwargs.append("network=network")
    if case.machine is not None:
        body.append(f"machine = machine_from_json({machine_to_json(case.machine)!r})")
        kwargs.append("machine=machine")
    if case.vectors is not None:
        kwargs.append(f"vectors={tuple(case.vectors)!r}")
    if case.points is not None:
        kwargs.append(f"points={tuple(case.points)!r}")
    if case.seed is not None:
        kwargs.append(f"seed={case.seed!r}")
    imports = [
        "from repro.logic.gates import GateKind",
        "from repro.logic.network import NetworkBuilder",
        "from repro.qa.cases import Case, machine_from_json",
        "from repro.qa.properties import PROPERTIES",
    ]
    indented = "\n".join(f"    {line}" for line in body) if body else "    pass"
    return (
        f'"""Minimized counterexample for QA property '
        f'{property_name!r} (auto-generated by repro.qa)."""\n'
        + "\n".join(imports)
        + "\n\n\n"
        + f"def test_{slug}_counterexample():\n"
        + (indented + "\n" if body else "")
        + f"    case = Case({', '.join(kwargs)})\n"
        + f"    assert PROPERTIES[{property_name!r}].check(case) is None\n"
    )
