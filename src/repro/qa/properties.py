"""The executable-invariant registry: the paper's theorems as properties.

Each :class:`Property` pairs a seeded case generator with a pure checker
``check(case) -> Optional[str]`` (``None`` = holds, message = violated).
Checkers quantify *internally* over small, exhaustively enumerable
universes (all inputs, all single faults) so the greedy shrinker can
re-check mutated cases without carrying a fault or point selection
around.  The registered invariants:

* ``backend-agreement`` — bitmask / pointwise / sampled backends agree
  bit-for-bit with the naive reference interpreter, fault-free and under
  every single stem/pin fault (the differential anchor for PR 1's
  single-engine seam); the fault-batched block backends (packed
  fallback, and NumPy vectorized when installed) match the same tables
  and produce byte-identical sweep statuses.
* ``alternation-self-dual`` — a synthesized self-dual network satisfies
  ``F(X̄) = ¬F(X)`` at every point (Definition 2.5 / Theorem 2.1), per
  the reference interpreter, and the engine's tables match it.
* ``algorithm31-oracle-agreement`` — Algorithm 3.1's per-line verdict
  (conditions A–E + Corollary 3.2) names exactly the lines whose stem
  faults the exhaustive Definition-2.4 oracle finds fault-insecure.
* ``atpg-detects`` — PODEM is sound (every generated test detects its
  target fault per the reference interpreter) and, on these small
  networks, complete (testable faults get tests); alternating pairs it
  emits really produce a nonalternating output pair (Theorem 3.2).
* ``collapse-verdict`` — every structural equivalence class of faults is
  status-uniform under the sweep, so the ``collapse=True`` campaign
  default preserves verdicts.
* ``seq-transform-equivalence`` — dual flip-flop (Figure 4.2a) and
  code-conversion (Figure 4.5) machines decode to the reference Mealy
  run and alternate cleanly when fault-free.
* ``sampled-determinism`` — one seed yields one sample set and one set
  of verdicts, across fresh backends and across the sweep's serial vs
  fork-worker paths; the supervised campaign report's chunk ledger must
  balance (completed + resumed = total) so no work is silently lost.
* ``atpg-drop-soundness`` — every fault the fault-dropping ATPG driver
  classifies as detected is confirmed detected by the block backend
  (and the naive reference interpreter) for the single pattern the
  report credits it to; classification counts must tile the universe.
* ``atpg-compaction-conservation`` — the compacted test set detects
  exactly the faults the full per-fault (no-drop, no-compact) set
  detects, both by the reports' own claims and by re-simulating each
  pattern set against the whole collapsed universe.
* ``synth-determinism`` — a synthesis campaign is a pure function of
  its seed: two fresh runs are byte-identical, and an interrupted run
  resumed from its checkpoint produces the same winner, history, and
  evaluation count as the uninterrupted one.
* ``synth-soundness`` — the batched fitness record the search trusted
  matches the scalar evaluator field-for-field, and a claimed-perfect
  winner re-verifies from first principles: reference-interpreter
  tables equal the spec, every output self-dual, and the exhaustive
  Definition-2.4 oracle finds no fault-insecure line.
"""

from __future__ import annotations

import dataclasses
import random
from typing import Callable, Dict, List, Optional, Sequence, Tuple

from ..core.analysis import analyze_network
from ..core.atpg import Podem
from ..core.collapse import collapse_stem_faults, equivalence_collapse
from ..core.simulate import ScalSimulator
from ..engine import FaultSweep, NetworkEngine
from ..engine.vectorized import (
    HAVE_NUMPY,
    PackedFallbackBackend,
    VectorizedBackend,
)
from ..logic.faults import enumerate_single_faults, enumerate_stem_faults
from ..logic.network import Network
from ..scal.codeconv import to_code_conversion
from ..scal.dualff import to_dual_flipflop
from ..workloads.randomlogic import (
    random_alternating_network,
    random_input_vectors,
    random_machine,
    random_mixed_network,
    random_nand_network,
    random_sample_points,
)
from .cases import Case
from .reference import (
    point_tuple,
    reference_is_self_dual,
    reference_output_bits,
    reference_outputs,
)

#: Trial-size ceilings — small enough that every checker can afford to
#: quantify exhaustively over inputs × faults, large enough to exercise
#: fanout, reconvergence, and every gate kind.
MAX_INPUTS = 4
MAX_GATES = 10


@dataclasses.dataclass(frozen=True)
class Property:
    """One registered invariant: seeded generator + pure checker."""

    name: str
    description: str
    generate: Callable[[random.Random], Case]
    check: Callable[[Case], Optional[str]]


PROPERTIES: Dict[str, Property] = {}


def register(name: str, description: str):
    def wrap(pair: Tuple) -> Property:
        generate, check = pair
        prop = Property(name, description, generate, check)
        PROPERTIES[name] = prop
        return prop

    return wrap


def trial_rng(seed: int, name: str, trial: int) -> random.Random:
    """The per-trial RNG: deterministic in (seed, property, trial) and
    independent of interpreter hash randomization."""
    return random.Random(f"{seed}:{name}:{trial}")


# ----------------------------------------------------------------------
# backend-agreement
# ----------------------------------------------------------------------
def _gen_mixed(rng: random.Random) -> Case:
    n = rng.randint(2, MAX_INPUTS)
    gates = rng.randint(2, MAX_GATES)
    if rng.random() < 0.5:
        net = random_nand_network(rng, n, gates, n_outputs=rng.randint(1, 2))
    else:
        net = random_mixed_network(rng, n, gates, n_outputs=rng.randint(1, 2))
    return Case(network=net)


def _check_backend_agreement(case: Case) -> Optional[str]:
    net = case.network
    if net is None:
        return None
    n = len(net.inputs)
    engine = NetworkEngine(net)  # fresh — never trust another run's cache
    universe = [None] + enumerate_single_faults(net, collapse=False)
    all_points = list(range(1 << n))
    packed = PackedFallbackBackend(engine.compiled, engine.bitmask)
    vectorized = (
        VectorizedBackend(engine.compiled) if HAVE_NUMPY else None
    )
    for fault in universe:
        label = fault.describe() if fault is not None else "fault-free"
        expected = reference_output_bits(net, fault)
        got_mask = engine.bitmask.output_bits(fault)
        if got_mask != expected:
            return (
                f"bitmask backend disagrees with reference under {label}: "
                f"{got_mask} != {expected}"
            )
        got_packed = packed.output_bits(fault)
        if got_packed != expected:
            return (
                f"packed fallback backend disagrees with reference under "
                f"{label}: {got_packed} != {expected}"
            )
        if vectorized is not None:
            got_vec = vectorized.output_bits(fault)
            if got_vec != expected:
                return (
                    f"vectorized backend disagrees with reference under "
                    f"{label}: {got_vec} != {expected}"
                )
        for index in all_points:
            point = point_tuple(n, index)
            want = reference_outputs(net, point, fault)
            got = engine.pointwise.output_values(point, fault)
            if tuple(got) != want:
                return (
                    f"pointwise backend disagrees with reference under "
                    f"{label} at point {index}: {tuple(got)} != {want}"
                )
        sampled = engine.sampled.output_vectors(all_points, fault)
        want_all = [
            reference_outputs(net, point_tuple(n, i), fault)
            for i in all_points
        ]
        if [tuple(v) for v in sampled] != want_all:
            return f"sampled backend disagrees with reference under {label}"
    # Fault statuses must be byte-identical across the sweep backends
    # (the vectorized classification is a re-derivation, not a reuse, of
    # the scalar one — this is the differential check that keeps them
    # locked together).
    sweep = FaultSweep(net, engine=engine)
    faults = [f for f in universe if f is not None]
    scalar = [status for _f, status in sweep.sweep(faults, backend="bitmask")]
    fallback = packed.sweep_statuses(faults)
    if fallback != scalar:
        return (
            "packed fallback statuses diverge from scalar bitmask: "
            f"{fallback} != {scalar}"
        )
    if vectorized is not None:
        vec_statuses = vectorized.sweep_statuses(faults)
        if vec_statuses != scalar:
            return (
                "vectorized statuses diverge from scalar bitmask: "
                f"{vec_statuses} != {scalar}"
            )
        # The codegen kernel tier re-derives the classification a third
        # way (specialized straight-line source, folded seeds, fused
        # pair check) — exercise single-threaded and tiled/threaded
        # variants, fresh each time so no kernel cache is trusted.
        from ..engine.kernels import KernelBackend

        for label, kwargs in (
            ("kernel", {}),
            ("kernel[tiled,threads=2]", {"tile_words": 1, "threads": 2}),
        ):
            kern = KernelBackend(
                engine.compiled, vectorized=vectorized, **kwargs
            )
            kern_statuses = kern.sweep_statuses(faults)
            if kern_statuses != scalar:
                return (
                    f"{label} statuses diverge from scalar bitmask: "
                    f"{kern_statuses} != {scalar}"
                )
    return None


backend_agreement = register(
    "backend-agreement",
    "bitmask/pointwise/sampled/packed/vectorized/kernel backends match "
    "the naive interpreter bit-for-bit under every single fault, with "
    "identical sweep statuses",
)((_gen_mixed, _check_backend_agreement))


# ----------------------------------------------------------------------
# alternation-self-dual
# ----------------------------------------------------------------------
def _gen_alternating(rng: random.Random) -> Case:
    n = rng.randint(2, 3)
    return Case(network=random_alternating_network(rng, n))


def _check_alternation(case: Case) -> Optional[str]:
    net = case.network
    if net is None:
        return None
    n = len(net.inputs)
    full = (1 << n) - 1
    ref_bits = reference_output_bits(net)
    engine_bits = NetworkEngine(net).bitmask.output_bits()
    if tuple(engine_bits) != ref_bits:
        return (
            f"engine fault-free tables disagree with reference: "
            f"{tuple(engine_bits)} != {ref_bits}"
        )
    for out, bits in zip(net.outputs, ref_bits):
        for index in range(1 << n):
            value = (bits >> index) & 1
            mirror = (bits >> (index ^ full)) & 1
            if mirror != 1 - value:
                return (
                    f"output {out!r} does not alternate at pair anchored "
                    f"at {index}: F(X)={value}, F(X̄)={mirror}"
                )
        if not reference_is_self_dual(bits, n):
            return f"output {out!r} is not self-dual"  # pragma: no cover
    return None


alternation_self_dual = register(
    "alternation-self-dual",
    "synthesized self-dual networks satisfy F(X̄)=¬F(X) at every point "
    "(Definition 2.5), engine and reference agreeing",
)((_gen_alternating, _check_alternation))


# ----------------------------------------------------------------------
# algorithm31-oracle-agreement
# ----------------------------------------------------------------------
def _check_algorithm31(case: Case) -> Optional[str]:
    net = case.network
    if net is None:
        return None
    analysis = analyze_network(net)
    if not analysis.alternating or analysis.redundant:
        # Algorithm 3.1's premises (self-dual, irredundant) do not hold;
        # nothing to compare.  Shrunken candidates that lose the premise
        # are treated as passing, so shrinking stays inside the domain.
        return None
    failing = set(analysis.failing_lines())
    verdict = ScalSimulator(net).verdict(include_pins=False)
    insecure = {resp.fault.line for resp in verdict.insecure}
    if failing != insecure:
        return (
            f"Algorithm 3.1 and the exhaustive oracle disagree on "
            f"fault-insecure lines: algorithm={sorted(failing)}, "
            f"oracle={sorted(insecure)}"
        )
    return None


algorithm31_oracle = register(
    "algorithm31-oracle-agreement",
    "Algorithm 3.1 (conditions A–E + Corollary 3.2) flags exactly the "
    "stem-fault-insecure lines the exhaustive oracle finds",
)((_gen_alternating, _check_algorithm31))


# ----------------------------------------------------------------------
# atpg-detects
# ----------------------------------------------------------------------
def _gen_atpg(rng: random.Random) -> Case:
    if rng.random() < 0.5:
        # Self-dual population: exercises the Theorem 3.2 pair guarantee.
        return Case(network=random_alternating_network(rng, rng.randint(2, 3)))
    n = rng.randint(2, MAX_INPUTS)
    gates = rng.randint(2, 8)
    return Case(network=random_nand_network(rng, n, gates))


def _check_atpg(case: Case) -> Optional[str]:
    net = case.network
    if net is None:
        return None
    n = len(net.inputs)
    podem = Podem(net)
    normal = reference_output_bits(net)
    # Theorem 3.2's "the pair (X, X̄) yields a nonalternating output" is a
    # SCAL-domain guarantee: it presumes the fault-free pair alternates,
    # i.e. every output self-dual.  Outside that domain only single-vector
    # soundness/completeness is claimed.
    self_dual = all(
        reference_is_self_dual(bits, n) for bits in normal
    )
    for fault in enumerate_stem_faults(net):
        faulty = reference_output_bits(net, fault)
        testable = faulty != normal
        test = podem.generate_test(fault)
        if test is not None:
            point = tuple(test[name] for name in net.inputs)
            if reference_outputs(net, point, fault) == reference_outputs(
                net, point
            ):
                return (
                    f"PODEM test for {fault.describe()} does not detect "
                    f"it (assignment {test})"
                )
        if testable and test is None:
            return (
                f"PODEM found no test for the testable fault "
                f"{fault.describe()}"
            )
        if test is not None and not testable:
            return (
                f"PODEM claims a test for the untestable fault "
                f"{fault.describe()}"
            )
        if not self_dual:
            continue
        pair = podem.generate_alternating_test(fault)
        if pair is not None:
            x, xbar = pair
            if x ^ xbar != (1 << n) - 1:
                return f"alternating pair {pair} is not an (X, X̄) pair"
            bad_x = reference_outputs(net, point_tuple(n, x), fault)
            bad_xb = reference_outputs(net, point_tuple(n, xbar), fault)
            if all(b == 1 - a for a, b in zip(bad_x, bad_xb)):
                return (
                    f"alternating pair for {fault.describe()} still "
                    f"alternates under the fault (undetectable by the "
                    f"checker)"
                )
    return None


atpg_detects = register(
    "atpg-detects",
    "PODEM tests detect their target fault (sound + complete on small "
    "networks) and, on self-dual networks, alternating pairs yield "
    "nonalternating outputs",
)((_gen_atpg, _check_atpg))


# ----------------------------------------------------------------------
# collapse-verdict
# ----------------------------------------------------------------------
def _check_collapse(case: Case) -> Optional[str]:
    net = case.network
    if net is None:
        return None
    sweep = FaultSweep(net)
    for members in equivalence_collapse(net).values():
        statuses = {
            member.describe(): sweep.classify(member) for member in members
        }
        if len(set(statuses.values())) > 1:
            return (
                f"fault equivalence class is not status-uniform: {statuses}"
            )
    return None


collapse_verdict = register(
    "collapse-verdict",
    "every structural fault-equivalence class is status-uniform, so the "
    "collapse=True campaign default preserves verdicts",
)((_gen_mixed, _check_collapse))


# ----------------------------------------------------------------------
# seq-transform-equivalence
# ----------------------------------------------------------------------
def _gen_machine(rng: random.Random) -> Case:
    machine = random_machine(rng, rng.randint(2, 4))
    vectors = tuple(random_input_vectors(rng, 1, rng.randint(3, 8)))
    return Case(machine=machine, vectors=vectors)


def _check_seq_equivalence(case: Case) -> Optional[str]:
    if case.machine is None or case.vectors is None or not case.vectors:
        return None
    machine, vectors = case.machine, list(case.vectors)
    reference = [tuple(out) for out in machine.run(vectors)]
    dualff = to_dual_flipflop(machine)
    run_d = dualff.run(vectors)
    if run_d.detected:
        return "fault-free dual flip-flop run fails to alternate"
    decoded_d = [tuple(z) for z in dualff.decoded_outputs(run_d)]
    if decoded_d != reference:
        return (
            f"dual flip-flop machine decodes {decoded_d}, reference Mealy "
            f"run gives {reference}"
        )
    codeconv = to_code_conversion(machine)
    run_c = codeconv.run(vectors)
    if run_c.detected:
        return "fault-free code-conversion run raises a checker"
    decoded_c = [tuple(z) for z in codeconv.decoded_outputs(run_c)]
    if decoded_c != decoded_d:
        return (
            f"code-conversion machine decodes {decoded_c}, dual flip-flop "
            f"decodes {decoded_d}"
        )
    return None


seq_equivalence = register(
    "seq-transform-equivalence",
    "dual flip-flop and code-conversion SCAL machines both decode to the "
    "reference Mealy run and alternate cleanly fault-free",
)((_gen_machine, _check_seq_equivalence))


# ----------------------------------------------------------------------
# sampled-determinism
# ----------------------------------------------------------------------
def _gen_sampled(rng: random.Random) -> Case:
    case = _gen_mixed(rng)
    return dataclasses.replace(case, seed=rng.randint(0, 2**31 - 1))


def _sampled_run(
    net: Network, seed: int
) -> Tuple[List[int], List[Tuple[str, Tuple[Tuple[int, ...], ...]]]]:
    """One complete seeded sampled campaign, on entirely fresh state."""
    n = len(net.inputs)
    rng = random.Random(seed)
    points = random_sample_points(rng, n, min(8, 1 << n))
    engine = NetworkEngine(net)
    verdicts = []
    for fault in enumerate_stem_faults(net):
        vectors = tuple(engine.sampled.output_vectors(points, fault))
        verdicts.append((fault.describe(), vectors))
    return points, verdicts


def _check_sampled_determinism(case: Case) -> Optional[str]:
    net = case.network
    if net is None or case.seed is None:
        return None
    points_a, verdicts_a = _sampled_run(net, case.seed)
    points_b, verdicts_b = _sampled_run(net, case.seed)
    if points_a != points_b:
        return (
            f"sample set differs across runs of seed {case.seed}: "
            f"{points_a} != {points_b}"
        )
    if verdicts_a != verdicts_b:
        return f"sampled verdicts differ across runs of seed {case.seed}"
    sweep = FaultSweep(net)
    universe = sweep.single_fault_universe()
    serial = [status for _f, status in sweep.sweep(universe)]
    forked = [
        status for _f, status in sweep.sweep(universe, processes=2)
    ]
    if serial != forked:
        return "serial and fork-worker sweeps classify faults differently"
    # The supervised runtime must also account for every chunk it ran:
    # a report whose chunk ledger does not add up means work was lost
    # (or double-counted) even though the statuses happened to agree.
    report = sweep.last_report
    if report is None:
        return "sweep left no CampaignReport behind"
    if report.chunks_completed + report.chunks_resumed != report.chunks_total:
        return (
            f"campaign report ledger does not balance: "
            f"{report.chunks_completed} completed + "
            f"{report.chunks_resumed} resumed != {report.chunks_total} total"
        )
    if report.faults != len(universe):
        return (
            f"campaign report covers {report.faults} faults, "
            f"universe has {len(universe)}"
        )
    return None


sampled_determinism = register(
    "sampled-determinism",
    "one seed ⇒ one sample set and one verdict list, across fresh "
    "backends and across serial vs fork-worker sweeps, with a balanced "
    "campaign-report chunk ledger",
)((_gen_sampled, _check_sampled_determinism))


# ----------------------------------------------------------------------
# atpg-drop-soundness / atpg-compaction-conservation
# ----------------------------------------------------------------------
def _gen_atpg_engine(rng: random.Random) -> Case:
    # Small enough that 200 tier-1 trials stay cheap: each checker runs
    # whole ATPG campaigns plus per-pattern reference simulations.
    n = rng.randint(2, 3)
    gates = rng.randint(2, 8)
    if rng.random() < 0.5:
        net = random_nand_network(rng, n, gates, n_outputs=rng.randint(1, 2))
    else:
        net = random_mixed_network(rng, n, gates, n_outputs=rng.randint(1, 2))
    return Case(network=net)


def _atpg_universe(net: Network):
    """The driver's default target list, reproduced independently."""
    return sorted(collapse_stem_faults(net), key=lambda f: (f.line, f.value))


def _check_atpg_drop_soundness(case: Case) -> Optional[str]:
    from ..engine.atpg import run_atpg

    net = case.network
    if net is None:
        return None
    n = len(net.inputs)
    universe = _atpg_universe(net)
    engine = NetworkEngine(net)  # fresh — never trust another run's cache
    report = run_atpg(net, engine=engine)
    if report.detected + report.redundant + report.aborted != report.requested:
        return (
            f"classification counts do not tile the universe: "
            f"{report.detected} + {report.redundant} + {report.aborted} "
            f"!= {report.requested}"
        )
    by_name = {fault.describe(): fault for fault in universe}
    by_pattern: Dict[int, List[str]] = {}
    for name, status in report.classifications.items():
        if status != "detected":
            continue
        if name not in report.detected_by:
            return f"detected fault {name} has no crediting pattern"
        index = report.detected_by[name]
        if not 0 <= index < len(report.patterns):
            return f"fault {name} credits out-of-range pattern {index}"
        by_pattern.setdefault(index, []).append(name)
    # One block-backend pass per credited pattern (not per fault).
    for index, names in sorted(by_pattern.items()):
        pattern = report.patterns[index]
        base = engine.packed.pattern_bits([pattern], None)
        rows = engine.packed.pattern_bits(
            [pattern], [by_name[name] for name in names]
        )
        point = point_tuple(n, pattern)
        reference_good = reference_outputs(net, point)
        for name, row in zip(names, rows):
            if not any((b ^ r) & 1 for b, r in zip(base, row)):
                return (
                    f"dropped fault {name} is not detected by its "
                    f"credited pattern {pattern} per the block backend"
                )
            if reference_outputs(net, point, by_name[name]) == (
                reference_good
            ):
                return (
                    f"dropped fault {name} is not detected by pattern "
                    f"{pattern} per the reference interpreter"
                )
    return None


atpg_drop_soundness = register(
    "atpg-drop-soundness",
    "every fault the dropping ATPG driver marks detected is confirmed "
    "by the block backend and the reference interpreter on the single "
    "pattern credited in the report",
)((_gen_atpg_engine, _check_atpg_drop_soundness))


def _detected_set(engine: NetworkEngine, patterns, universe) -> frozenset:
    """Names of the universe faults some pattern in ``patterns`` detects."""
    if not patterns:
        return frozenset()
    pats = list(patterns)
    base = engine.packed.pattern_bits(pats, None)
    rows = engine.packed.pattern_bits(pats, universe)
    detected = set()
    for fault, row in zip(universe, rows):
        if any(b ^ r for b, r in zip(base, row)):
            detected.add(fault.describe())
    return frozenset(detected)


def _check_atpg_compaction(case: Case) -> Optional[str]:
    from ..engine.atpg import run_atpg

    net = case.network
    if net is None:
        return None
    universe = _atpg_universe(net)
    engine = NetworkEngine(net)
    compacted = run_atpg(net, engine=engine)
    full = run_atpg(net, engine=engine, drop=False, compact=False)
    claimed_c = {
        name
        for name, status in compacted.classifications.items()
        if status == "detected"
    }
    claimed_f = {
        name
        for name, status in full.classifications.items()
        if status == "detected"
    }
    if claimed_c != claimed_f:
        return (
            f"compacted run claims a different detected set than the "
            f"per-fault run: only-compacted={sorted(claimed_c - claimed_f)}, "
            f"only-full={sorted(claimed_f - claimed_c)}"
        )
    simulated_c = _detected_set(engine, compacted.patterns, universe)
    simulated_f = _detected_set(engine, full.patterns, universe)
    if simulated_c != simulated_f:
        return (
            f"compacted pattern set detects a different fault set than "
            f"the full set: only-compacted="
            f"{sorted(simulated_c - simulated_f)}, "
            f"only-full={sorted(simulated_f - simulated_c)}"
        )
    if simulated_c != claimed_c:
        return (
            f"report claims differ from simulation: claimed-only="
            f"{sorted(claimed_c - simulated_c)}, simulated-only="
            f"{sorted(simulated_c - claimed_c)}"
        )
    if compacted.patterns_kept > full.patterns_kept:
        return (
            f"compaction kept more patterns ({compacted.patterns_kept}) "
            f"than the uncompacted per-fault run ({full.patterns_kept})"
        )
    return None


atpg_compaction = register(
    "atpg-compaction-conservation",
    "the compacted ATPG test set detects exactly the faults the full "
    "per-fault set detects, by report claims and by re-simulating both "
    "pattern sets against the collapsed universe",
)((_gen_atpg_engine, _check_atpg_compaction))


# ----------------------------------------------------------------------
# synth-determinism / synth-soundness
# ----------------------------------------------------------------------
#: Spec rotation for synth trials; the checker derives the spec from
#: the case seed so the whole trial shrinks along one integer.
_SYNTH_SPECS = ("and2", "or2", "maj3", "xor2")


def _gen_synth(rng: random.Random) -> Case:
    return Case(seed=rng.randint(0, 2**31 - 1))


def _micro_synth(
    spec_name: str,
    seed: int,
    checkpoint: Optional[str] = None,
    resume: bool = False,
    abort_after: Optional[int] = None,
):
    """A deliberately tiny campaign — determinism and soundness do not
    need convergence, so trials stay cheap enough for the fuzz budget."""
    from ..synth import SPECS, SynthCampaign

    return SynthCampaign(
        SPECS[spec_name],
        seed=seed,
        population=8,
        generations=4,
        max_gates=8,
        checkpoint=checkpoint,
        resume=resume,
        abort_after_generations=abort_after,
    )


def _synth_identity(report) -> Tuple:
    """The replay-comparable slice of a SynthReport (timing, transport
    accounting, and checkpoint paths legitimately vary)."""
    return (
        report.best_genome,
        report.best_fingerprint,
        report.best_generation,
        dataclasses.replace(report.best_record, backend=""),
        report.generations_run,
        report.evaluations,
        report.improvements,
        report.converged,
        tuple(tuple(sorted(h.items())) for h in report.history),
        tuple(tuple(sorted(p.items())) for p in report.pareto),
    )


def _check_synth_determinism(case: Case) -> Optional[str]:
    import os
    import tempfile

    from ..synth import SynthInterrupted

    if case.seed is None:
        return None
    spec_name = _SYNTH_SPECS[case.seed % len(_SYNTH_SPECS)]
    straight = _synth_identity(_micro_synth(spec_name, case.seed).run())
    repeat = _synth_identity(_micro_synth(spec_name, case.seed).run())
    if repeat != straight:
        return (
            f"two fresh runs of spec {spec_name!r} seed {case.seed} "
            f"diverge: {repeat} != {straight}"
        )
    with tempfile.TemporaryDirectory() as tmp:
        ckpt = os.path.join(tmp, "synth.ckpt.json")
        try:
            _micro_synth(
                spec_name, case.seed, checkpoint=ckpt, abort_after=2
            ).run()
        except SynthInterrupted:
            pass  # expected unless the search converged within 2 generations
        resumed = _synth_identity(
            _micro_synth(spec_name, case.seed, checkpoint=ckpt, resume=True)
            .run()
        )
    if resumed != straight:
        return (
            f"checkpoint-resumed run of spec {spec_name!r} seed "
            f"{case.seed} diverges from the uninterrupted one: "
            f"{resumed} != {straight}"
        )
    return None


synth_determinism = register(
    "synth-determinism",
    "a synthesis campaign is a pure function of its seed: fresh reruns "
    "and checkpoint-resumed continuations are byte-identical",
)((_gen_synth, _check_synth_determinism))


def _check_synth_soundness(case: Case) -> Optional[str]:
    from ..synth import SPECS, Genome
    from ..synth.fitness import evaluate_task, make_task

    if case.seed is None:
        return None
    spec = SPECS[_SYNTH_SPECS[case.seed % len(_SYNTH_SPECS)]]
    report = _micro_synth(spec.name, case.seed).run()
    genome = Genome.from_json(report.best_genome)
    claimed = dataclasses.replace(report.best_record, backend="")
    scalar = dataclasses.replace(
        evaluate_task(make_task(genome, spec, mode="scalar")), backend=""
    )
    if scalar != claimed:
        return (
            f"the batched fitness record the search trusted diverges "
            f"from the scalar evaluator for the winner of spec "
            f"{spec.name!r} seed {case.seed}: {scalar} != {claimed}"
        )
    if not report.converged:
        return None
    # A claimed-perfect winner must re-verify from first principles.
    net = genome.to_network(spec.input_names)
    bits = reference_output_bits(net)
    if tuple(bits) != tuple(spec.tables):
        return (
            f"claimed-perfect winner's reference tables {tuple(bits)} "
            f"do not match spec {spec.name!r} tables {tuple(spec.tables)}"
        )
    n = len(spec.input_names)
    for out, out_bits in zip(net.outputs, bits):
        if not reference_is_self_dual(out_bits, n):
            return (
                f"claimed-perfect winner output {out!r} is not self-dual "
                f"per the reference interpreter"
            )
    verdict = ScalSimulator(net).verdict(include_pins=False)
    if verdict.insecure:
        lines = sorted(resp.fault.line for resp in verdict.insecure)
        return (
            f"claimed-perfect winner has fault-insecure lines per the "
            f"exhaustive Definition-2.4 oracle: {lines}"
        )
    return None


synth_soundness = register(
    "synth-soundness",
    "batched fitness records match the scalar evaluator, and a "
    "claimed-perfect synthesis winner re-verifies against the reference "
    "interpreter and the exhaustive fault-security oracle",
)((_gen_synth, _check_synth_soundness))


def property_names() -> List[str]:
    return sorted(PROPERTIES)


def resolve(names: Optional[Sequence[str]] = None) -> List[Property]:
    """The selected properties (default: all), with a helpful error."""
    if not names:
        return [PROPERTIES[name] for name in property_names()]
    chosen = []
    for name in names:
        if name not in PROPERTIES:
            known = ", ".join(property_names())
            raise KeyError(f"unknown property {name!r}; registered: {known}")
        chosen.append(PROPERTIES[name])
    return chosen
