"""The fuzz campaign driver behind ``python -m repro fuzz``.

Splits a trial budget across the registered properties, draws each
trial's case from a deterministic per-(seed, property, trial) RNG, and
on any violation runs the greedy shrinker and writes two artifacts per
counterexample into the artifact directory:

* ``<property>-seed<seed>-trial<k>.json`` — the full case (original and
  shrunk) plus the failure detail, machine-readable;
* ``test_repro_<property>_<k>.py`` — a runnable pytest regression test
  that fails while the bug is present and passes once fixed.

Everything is deterministic given ``--seed``; the nightly CI job rotates
the seed by run number so the explored population grows over time while
any failure stays reproducible from the artifact alone.
"""

from __future__ import annotations

import dataclasses
import os
from typing import List, Optional, Sequence

from .. import obs
from .cases import Counterexample
from .properties import Property, resolve, trial_rng
from .shrink import shrink_case

DEFAULT_ARTIFACT_DIR = os.path.join("qa", "artifacts")

_REG = obs.REGISTRY
_M_TRIALS = _REG.counter(
    "repro_qa_trials_total", "Fuzz trials run, by property and verdict"
)


@dataclasses.dataclass(frozen=True)
class PropertyReport:
    """Outcome of one property's share of a fuzz campaign."""

    property_name: str
    trials: int
    counterexamples: List[Counterexample]

    @property
    def ok(self) -> bool:
        return not self.counterexamples


@dataclasses.dataclass(frozen=True)
class FuzzReport:
    """Outcome of one whole campaign."""

    seed: int
    budget: int
    reports: List[PropertyReport]
    artifact_paths: List[str]

    @property
    def ok(self) -> bool:
        return all(report.ok for report in self.reports)

    def summary(self) -> str:
        lines = [f"fuzz seed={self.seed} budget={self.budget}"]
        for report in self.reports:
            status = (
                "ok"
                if report.ok
                else f"{len(report.counterexamples)} counterexample(s)"
            )
            lines.append(
                f"  {report.property_name}: {report.trials} trials -> {status}"
            )
            for ce in report.counterexamples:
                lines.append(f"    trial {ce.trial}: {ce.detail}")
                lines.append(
                    f"    shrunk size {ce.case.size()} -> {ce.shrunk.size()}"
                )
        for path in self.artifact_paths:
            lines.append(f"  wrote {path}")
        return "\n".join(lines)


def run_property(
    prop: Property,
    seed: int,
    trials: int,
    shrink: bool = True,
    max_failures: int = 1,
) -> PropertyReport:
    """Fuzz one property for ``trials`` cases; stop after
    ``max_failures`` counterexamples (each shrink re-runs the checker
    many times, so one witness per property per campaign is the useful
    default)."""
    counterexamples: List[Counterexample] = []
    with obs.span("qa.property", property=prop.name, trials=trials) as sp:
        for trial in range(trials):
            rng = trial_rng(seed, prop.name, trial)
            case = prop.generate(rng)
            detail = prop.check(case)
            if detail is None:
                if _REG.enabled:
                    _M_TRIALS.inc(property=prop.name, verdict="pass")
                continue
            if _REG.enabled:
                _M_TRIALS.inc(property=prop.name, verdict="fail")
            shrunk = shrink_case(case, prop.check) if shrink else case
            final_detail = prop.check(shrunk) or detail
            counterexamples.append(
                Counterexample(
                    property_name=prop.name,
                    seed=seed,
                    trial=trial,
                    detail=final_detail,
                    case=case,
                    shrunk=shrunk,
                )
            )
            if len(counterexamples) >= max_failures:
                break
        sp.set(counterexamples=len(counterexamples))
    return PropertyReport(prop.name, trials, counterexamples)


def write_artifacts(
    counterexamples: Sequence[Counterexample], artifact_dir: str
) -> List[str]:
    paths: List[str] = []
    if not counterexamples:
        return paths
    os.makedirs(artifact_dir, exist_ok=True)
    for ce in counterexamples:
        slug = ce.property_name.replace("-", "_")
        stem = f"{ce.property_name}-seed{ce.seed}-trial{ce.trial}"
        json_path = os.path.join(artifact_dir, f"{stem}.json")
        with open(json_path, "w") as handle:
            handle.write(ce.dumps() + "\n")
        paths.append(json_path)
        test_path = os.path.join(
            artifact_dir, f"test_repro_{slug}_{ce.trial}.py"
        )
        with open(test_path, "w") as handle:
            handle.write(ce.to_json()["pytest_snippet"])
        paths.append(test_path)
    return paths


def fuzz(
    seed: int = 0,
    budget: int = 200,
    properties: Optional[Sequence[str]] = None,
    shrink: bool = True,
    artifact_dir: Optional[str] = DEFAULT_ARTIFACT_DIR,
    chaos_bug: Optional[str] = None,
) -> FuzzReport:
    """Run one fuzz campaign: ``budget`` trials split evenly across the
    selected properties.  ``chaos_bug`` activates a named engine sabotage
    (:mod:`repro.qa.chaos`) for the whole campaign — the harness
    self-test that proves detection, shrinking, and artifact emission
    work end to end."""
    chosen = resolve(properties)
    per_property = max(1, budget // max(len(chosen), 1))
    reports: List[PropertyReport] = []

    def campaign() -> None:
        for prop in chosen:
            reports.append(run_property(prop, seed, per_property, shrink))

    if chaos_bug is not None:
        from .chaos import inject

        with inject(chaos_bug):
            campaign()
    else:
        campaign()

    artifact_paths: List[str] = []
    if artifact_dir is not None:
        for report in reports:
            artifact_paths.extend(
                write_artifacts(report.counterexamples, artifact_dir)
            )
    report = FuzzReport(
        seed=seed,
        budget=budget,
        reports=reports,
        artifact_paths=artifact_paths,
    )
    obs.event(
        "qa.report",
        seed=seed,
        budget=budget,
        ok=report.ok,
        properties=len(reports),
        counterexamples=sum(len(r.counterexamples) for r in reports),
        artifacts=len(artifact_paths),
    )
    return report
