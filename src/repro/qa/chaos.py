"""Deliberate engine sabotage — proving the fuzz harness can see.

A fuzzing subsystem that has never caught a bug is indistinguishable
from one that cannot.  Each named bug here patches exactly one engine
seam (one backend, one primitive) in a way the differential properties
must catch, and the harness self-test drives the full pipeline —
detect, shrink, emit artifact — against it.  The patches restore
themselves on exit; fuzz trials build fresh backends per case, so no
sabotaged baseline outlives the context.
"""

from __future__ import annotations

import contextlib
from typing import Callable, Dict, Iterator

from ..engine import backends
from ..logic.gates import GateKind


def _make_mask_bug(swap_from: GateKind, swap_as: GateKind) -> Callable:
    original = backends.evaluate_mask

    def broken(kind, masks, full):
        if kind is swap_from:
            return original(swap_as, masks, full)
        return original(kind, masks, full)

    return broken


def _make_point_bug(swap_from: GateKind, swap_as: GateKind) -> Callable:
    original = backends.eval_gate

    def broken(kind, values):
        if kind is swap_from:
            return original(swap_as, values)
        return original(kind, values)

    return broken


#: name -> (backends attribute, factory producing the sabotaged function)
BUGS: Dict[str, Callable[[], tuple]] = {
    # The bitmask (exhaustive-oracle) backend miscompiles NAND into AND.
    "nand-as-and": lambda: (
        "evaluate_mask",
        _make_mask_bug(GateKind.NAND, GateKind.AND),
    ),
    # The pointwise (clocked-campaign) backend miscompiles NOR into OR.
    "nor-as-or-pointwise": lambda: (
        "eval_gate",
        _make_point_bug(GateKind.NOR, GateKind.OR),
    ),
    # The bitmask backend drops the inversion of NOT.
    "not-as-buf": lambda: (
        "evaluate_mask",
        _make_mask_bug(GateKind.NOT, GateKind.BUF),
    ),
}


def bug_names() -> list:
    return sorted(BUGS)


@contextlib.contextmanager
def inject(name: str) -> Iterator[None]:
    """Activate one named engine bug for the duration of the context."""
    if name not in BUGS:
        known = ", ".join(bug_names())
        raise KeyError(f"unknown chaos bug {name!r}; known: {known}")
    attr, broken = BUGS[name]()
    original = getattr(backends, attr)
    setattr(backends, attr, broken)
    try:
        yield
    finally:
        setattr(backends, attr, original)
