"""Deliberate engine sabotage — proving the fuzz harness can see.

A fuzzing subsystem that has never caught a bug is indistinguishable
from one that cannot.  Each named bug here patches exactly one engine
seam (one backend, one primitive) in a way the differential properties
must catch, and the harness self-test drives the full pipeline —
detect, shrink, emit artifact — against it.  The patches restore
themselves on exit; fuzz trials build fresh backends per case, so no
sabotaged baseline outlives the context.

The second half of this module sabotages the *campaign runtime* the
same way: :func:`sabotage_campaign` arms worker-level failures — a
chunk that raises, a chunk that hangs, a worker SIGKILLed or exiting
mid-sweep, shared-memory allocation denied, the block backend broken —
and the supervisor tests assert the sweep still completes with
statuses byte-identical to the serial path, the incident visible in
the :class:`~repro.engine.supervisor.CampaignReport`.  Worker
sabotages ride :data:`repro.engine.supervisor.WORKER_CHUNK_HOOK`,
which fork children inherit from the parent at spawn time; *spawned*
socket workers (fresh interpreters, no inherited state) re-arm the
same hook from the ``REPRO_CHAOS_KIND`` / ``REPRO_CHAOS_ONCE``
environment variables via :func:`install_env_sabotage`.  One-shot
kinds coordinate across processes through an ``O_EXCL`` sentinel file
so a replacement worker does not re-fire the failure forever.

The third tier sabotages the *service*: :func:`sabotage_service` makes
campaigns deterministically slow or hung (so deadlines, disconnect
cancellation, drain, and SIGKILL recovery each have a wide window to
land in — spawned ``repro serve`` processes arm the same modes from the
:data:`SERVE_CHAOS_ENV` environment), and the misbehaving-client
drivers (:func:`slowloris_probe`, :func:`disconnecting_subscriber`)
attack the HTTP layer itself.
"""

from __future__ import annotations

import asyncio
import contextlib
import json
import os
import threading
import time
from typing import Callable, Dict, Iterator, List, Optional, Tuple

from ..engine import backends
from ..engine import supervisor as _supervisor
from ..engine.transport import fork as _transport_fork
from ..logic.gates import GateKind

#: Environment seam arming worker sabotage in spawned (non-fork) workers.
CHAOS_KIND_ENV = "REPRO_CHAOS_KIND"
CHAOS_ONCE_ENV = "REPRO_CHAOS_ONCE"


def _make_mask_bug(swap_from: GateKind, swap_as: GateKind) -> Callable:
    original = backends.evaluate_mask

    def broken(kind, masks, full):
        if kind is swap_from:
            return original(swap_as, masks, full)
        return original(kind, masks, full)

    return broken


def _make_point_bug(swap_from: GateKind, swap_as: GateKind) -> Callable:
    original = backends.eval_gate

    def broken(kind, values):
        if kind is swap_from:
            return original(swap_as, values)
        return original(kind, values)

    return broken


#: name -> (backends attribute, factory producing the sabotaged function)
BUGS: Dict[str, Callable[[], tuple]] = {
    # The bitmask (exhaustive-oracle) backend miscompiles NAND into AND.
    "nand-as-and": lambda: (
        "evaluate_mask",
        _make_mask_bug(GateKind.NAND, GateKind.AND),
    ),
    # The pointwise (clocked-campaign) backend miscompiles NOR into OR.
    "nor-as-or-pointwise": lambda: (
        "eval_gate",
        _make_point_bug(GateKind.NOR, GateKind.OR),
    ),
    # The bitmask backend drops the inversion of NOT.
    "not-as-buf": lambda: (
        "evaluate_mask",
        _make_mask_bug(GateKind.NOT, GateKind.BUF),
    ),
}


def bug_names() -> list:
    return sorted(BUGS)


@contextlib.contextmanager
def inject(name: str) -> Iterator[None]:
    """Activate one named engine bug for the duration of the context."""
    if name not in BUGS:
        known = ", ".join(bug_names())
        raise KeyError(f"unknown chaos bug {name!r}; known: {known}")
    attr, broken = BUGS[name]()
    original = getattr(backends, attr)
    setattr(backends, attr, broken)
    try:
        yield
    finally:
        setattr(backends, attr, original)


# ----------------------------------------------------------------------
# campaign-runtime sabotage (worker-level failures)
# ----------------------------------------------------------------------
def _fire_once(once_path: Optional[str]) -> bool:
    """Cross-process one-shot latch: only the first caller — parent or
    any forked worker — wins the ``O_EXCL`` create and fires."""
    if once_path is None:
        return True
    try:
        fd = os.open(once_path, os.O_CREAT | os.O_EXCL | os.O_WRONLY)
    except FileExistsError:
        return False
    os.close(fd)
    return True


def _worker_hook(action: Callable[[], None], once_path: Optional[str]):
    def hook(_chunk_key: str, _attempt: int) -> None:
        if _fire_once(once_path):
            action()

    return hook


def _chunk_raises() -> None:
    raise RuntimeError("chaos: chunk sabotaged")


def _chunk_hangs() -> None:
    time.sleep(3600)


def _worker_killed() -> None:
    import signal

    os.kill(os.getpid(), signal.SIGKILL)


def _worker_exits() -> None:
    os._exit(3)


def _socket_dropped() -> None:
    # Sever the worker's command connection without killing the
    # process: the supervisor sees EOF mid-chunk, must treat the lane
    # as dead, kill this orphan, and replace it.  The sleep keeps the
    # orphan alive long enough to prove the parent does the killing.
    from ..engine.transport import socket as _transport_socket

    conn = _transport_socket.CURRENT_CONNECTION
    if conn is not None:
        try:
            conn.close()
        except OSError:  # pragma: no cover
            pass
    time.sleep(3600)


#: Worker-level sabotages delivered through WORKER_CHUNK_HOOK (fork
#: children inherit the armed hook from the parent; spawned socket
#: workers re-arm it from the environment).
WORKER_SABOTAGE: Dict[str, Callable[[], None]] = {
    # The first chunk touched raises inside the worker: the supervisor
    # must retry it (backoff) and the sweep must still complete.
    "chunk-raises": _chunk_raises,
    # The first chunk hangs forever: the per-chunk timeout must fire,
    # the worker be killed and replaced, the chunk retried elsewhere.
    "chunk-hangs": _chunk_hangs,
    # A worker is SIGKILLed mid-chunk: pipe EOF, replacement, retry.
    "worker-killed": _worker_killed,
    # A worker exits cleanly but prematurely mid-chunk: same recovery.
    "worker-exits": _worker_exits,
    # A socket worker's connection drops mid-chunk while the process
    # lives on: lane death, orphan reaped, replacement, retry.
    "socket-dropped": _socket_dropped,
}


def install_env_sabotage() -> None:
    """Arm this process's :data:`WORKER_CHUNK_HOOK` from the chaos
    environment variables.  Called by the ``repro worker`` entry point:
    spawned workers inherit no parent Python state, so the sabotage
    travels as environment instead of an inherited module global."""
    kind = os.environ.get(CHAOS_KIND_ENV)
    if not kind or kind not in WORKER_SABOTAGE:
        return
    once_path = os.environ.get(CHAOS_ONCE_ENV) or None
    _supervisor.WORKER_CHUNK_HOOK = _worker_hook(
        WORKER_SABOTAGE[kind], once_path
    )


def campaign_sabotage_names() -> list:
    return sorted(WORKER_SABOTAGE) + ["shm-denied", "block-backend-broken"]


@contextlib.contextmanager
def sabotage_campaign(
    kind: str, once_path: Optional[str] = None
) -> Iterator[None]:
    """Arm one campaign-runtime failure for the duration of the context.

    Worker-level kinds (see :data:`WORKER_SABOTAGE`) install a
    :data:`~repro.engine.supervisor.WORKER_CHUNK_HOOK`; pass
    ``once_path`` (a path that does not exist yet) to make the failure
    one-shot across all forked workers, otherwise every chunk attempt
    fails and the sweep degrades to the serial rung.  Parent-side kinds:

    * ``shm-denied`` — shared-memory baseline allocation raises
      ``OSError``, forcing the ``fork+shm -> fork`` step;
    * ``block-backend-broken`` — the block backends raise on every
      chunk, forcing the ``serial -> scalar`` step (the scalar bitmask
      path stays honest).
    """
    if kind in WORKER_SABOTAGE:
        previous = _supervisor.WORKER_CHUNK_HOOK
        previous_env = {
            key: os.environ.get(key)
            for key in (CHAOS_KIND_ENV, CHAOS_ONCE_ENV)
        }
        _supervisor.WORKER_CHUNK_HOOK = _worker_hook(
            WORKER_SABOTAGE[kind], once_path
        )
        # Spawned socket workers cannot inherit the hook: arm the
        # environment too, which they read back at startup.
        os.environ[CHAOS_KIND_ENV] = kind
        if once_path is not None:
            os.environ[CHAOS_ONCE_ENV] = once_path
        try:
            yield
        finally:
            _supervisor.WORKER_CHUNK_HOOK = previous
            for key, value in previous_env.items():
                if value is None:
                    os.environ.pop(key, None)
                else:  # pragma: no cover - nested sabotage
                    os.environ[key] = value
    elif kind == "shm-denied":
        original = _transport_fork._create_shared_baseline

        def denied(_sweep):
            raise OSError("chaos: shared memory denied")

        _transport_fork._create_shared_baseline = denied
        try:
            yield
        finally:
            _transport_fork._create_shared_baseline = original
    elif kind == "block-backend-broken":
        original = _supervisor.chunk_statuses

        def broken(engine, faults, backend):
            if backend != "bitmask" and _fire_once(once_path):
                raise RuntimeError("chaos: block backend sabotaged")
            return original(engine, faults, backend)

        _supervisor.chunk_statuses = broken
        try:
            yield
        finally:
            _supervisor.chunk_statuses = original
    else:
        known = ", ".join(campaign_sabotage_names())
        raise KeyError(
            f"unknown campaign sabotage {kind!r}; known: {known}"
        )


# ----------------------------------------------------------------------
# service sabotage (`repro serve` chaos)
# ----------------------------------------------------------------------
#: Environment seam arming service sabotage in a spawned `repro serve`
#: process (read back by :func:`repro.server.serve` at startup).
SERVE_CHAOS_ENV = "REPRO_CHAOS_SERVE"
SERVE_CHAOS_SLOW_ENV = "REPRO_CHAOS_SLOW_S"

#: Kinds accepted by :func:`sabotage_service`.
SERVICE_SABOTAGE: Tuple[str, ...] = ("campaign-slow", "campaign-hangs")

# Hung campaigns park on this event instead of a bare sleep so an
# in-process test can release the stuck worker thread at teardown
# (ThreadPoolExecutor joins its threads at interpreter exit).
_SERVICE_HANG = threading.Event()


def release_service_hangs() -> None:
    """Unstick every ``campaign-hangs`` chunk currently parked."""
    _SERVICE_HANG.set()


def _service_chunk_statuses(kind: str, slow_s: float) -> Callable:
    original = _supervisor.chunk_statuses

    def sabotaged(engine, faults, backend):
        if kind == "campaign-slow":
            time.sleep(slow_s)
        else:  # campaign-hangs
            _SERVICE_HANG.wait(3600)
        return original(engine, faults, backend)

    return sabotaged


@contextlib.contextmanager
def sabotage_service(kind: str, slow_s: float = 0.2) -> Iterator[None]:
    """Arm one `repro serve` failure mode for the duration of the context.

    Both kinds stretch the campaign itself (every chunk classification
    pays a delay), which is what the service-resilience tests need: a
    campaign that is deterministically *slow* spans many supervision
    poll intervals, giving deadlines, subscriber-disconnect
    cancellation, drain, and SIGKILL each a wide window to land in.

    * ``campaign-slow`` — every chunk sleeps ``slow_s`` before
      classifying (the serial rung runs ~8 chunks, so a default sweep
      takes ~8×``slow_s``);
    * ``campaign-hangs`` — every chunk parks until
      :func:`release_service_hangs` (or 3600 s): the campaign never
      finishes on its own, so only cancellation bounded by the drain
      grace period gets the server out.

    The sabotage patches :func:`repro.engine.vectorized.chunk_statuses`
    through the :mod:`~repro.engine.supervisor` module attribute — the
    same seam ``block-backend-broken`` uses — so it bites every
    transport, including the inline/serial path ``repro serve`` runs
    small requests on.
    """
    if kind not in SERVICE_SABOTAGE:
        known = ", ".join(SERVICE_SABOTAGE)
        raise KeyError(f"unknown service sabotage {kind!r}; known: {known}")
    original = _supervisor.chunk_statuses
    _SERVICE_HANG.clear()
    _supervisor.chunk_statuses = _service_chunk_statuses(kind, slow_s)
    try:
        yield
    finally:
        _SERVICE_HANG.set()
        _supervisor.chunk_statuses = original


def install_serve_env_sabotage() -> None:
    """Arm service sabotage from the environment, permanently for this
    process.  Called by :func:`repro.server.serve` at startup when
    :data:`SERVE_CHAOS_ENV` is set: the SIGKILL+``--recover`` chaos test
    spawns real server subprocesses, so the sabotage travels as
    environment, exactly like worker sabotage does for spawned workers.
    """
    kind = os.environ.get(SERVE_CHAOS_ENV)
    if not kind or kind not in SERVICE_SABOTAGE:
        return
    slow_s = float(os.environ.get(SERVE_CHAOS_SLOW_ENV) or 0.2)
    _supervisor.chunk_statuses = _service_chunk_statuses(kind, slow_s)


# ----------------------------------------------------------------------
# misbehaving-client drivers (the other half of service chaos)
# ----------------------------------------------------------------------
async def slowloris_probe(host: str, port: int, pause_s: float = 60.0) -> int:
    """Open a connection, send half a request head, then stall.

    Returns the HTTP status the server answers with (408 when the
    slow-client guard works).  ``pause_s`` only bounds the stall — the
    server's read timeout is expected to fire first.
    """
    reader, writer = await asyncio.open_connection(host, port)
    try:
        writer.write(b"POST /campaign HTTP/1.1\r\nContent-")
        await writer.drain()
        try:
            status_line = await asyncio.wait_for(
                reader.readline(), timeout=pause_s
            )
        except asyncio.TimeoutError:
            return 0
        return int(status_line.split()[1])
    finally:
        writer.close()
        with contextlib.suppress(Exception):
            await writer.wait_closed()


async def disconnecting_subscriber(
    host: str, port: int, body: dict, after_lines: int = 1
) -> List[dict]:
    """POST a campaign, read ``after_lines`` NDJSON lines, then vanish
    mid-stream (no clean HTTP shutdown).  Returns the lines read — the
    server is expected to notice the EOF and cancel the orphaned
    campaign once its last subscriber is gone."""
    payload = json.dumps(body).encode()
    reader, writer = await asyncio.open_connection(host, port)
    lines: List[dict] = []
    try:
        writer.write(
            f"POST /campaign HTTP/1.1\r\nHost: {host}\r\n"
            f"Content-Length: {len(payload)}\r\n"
            f"Content-Type: application/json\r\n\r\n".encode() + payload
        )
        await writer.drain()
        while True:
            line = await reader.readline()  # headers, then chunk frames
            if not line:
                break
            text = line.strip().decode("latin-1", "replace")
            if text.startswith("{"):
                lines.append(json.loads(text))
                if len(lines) >= after_lines:
                    break
        return lines
    finally:
        writer.close()
        with contextlib.suppress(Exception):
            await writer.wait_closed()
