"""QA subsystem: differential fuzzing, metamorphic properties, shrinking.

The paper's theorems are executable invariants; this package checks them
continuously against randomized populations instead of only on the
hand-written examples:

* :mod:`repro.qa.reference` — an independent naive interpreter (shares
  no code with the engine) used as the differential oracle;
* :mod:`repro.qa.properties` — the registry of seeded properties
  (backend agreement, alternation, Algorithm 3.1 vs oracle, ATPG
  soundness, collapse verdicts, sequential-transform equivalence,
  sampled determinism);
* :mod:`repro.qa.shrink` — greedy counterexample minimization;
* :mod:`repro.qa.runner` — the campaign driver behind
  ``python -m repro fuzz`` (artifacts: JSON + pytest reproducer);
* :mod:`repro.qa.chaos` — named engine sabotage for harness self-tests.
"""

from .cases import (
    Case,
    Counterexample,
    case_from_json,
    case_to_json,
    network_from_json,
    network_to_json,
    pytest_snippet,
)
from .properties import PROPERTIES, Property, property_names, resolve, trial_rng
from .runner import FuzzReport, PropertyReport, fuzz, run_property
from .shrink import shrink_case

__all__ = [
    "Case",
    "Counterexample",
    "FuzzReport",
    "PROPERTIES",
    "Property",
    "PropertyReport",
    "case_from_json",
    "case_to_json",
    "fuzz",
    "network_from_json",
    "network_to_json",
    "property_names",
    "pytest_snippet",
    "resolve",
    "run_property",
    "shrink_case",
    "trial_rng",
]
