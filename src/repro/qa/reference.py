"""An independent naive interpreter — the differential-fuzzing oracle.

PR 1 routed every evaluation path through one compiled engine, so a
single miscompile would silently corrupt Algorithm 3.1 screening, ATPG
validation, and the SCAL oracle all at once.  This module is the
engine's *adversary*: a deliberately slow, first-principles netlist
interpreter that shares **no code** with :mod:`repro.engine` or even
:func:`repro.logic.gates.evaluate` — gate semantics are re-derived here
from the thesis's definitions (counting ones, not reusing the substrate
helpers), so a bug in the shared primitives cannot mask itself.

Fault semantics replicate the repo-wide contract exactly:

* a stem override forces a line's value and shadows any pin override on
  the gate driving it;
* a pin override forces one operand slot of one gate, leaving the stem
  and the other branches healthy;
* faults naming lines (or pin indices) absent from the network are
  ignored, matching the legacy dict-lookup evaluators.
"""

from __future__ import annotations

from typing import Dict, List, Optional, Sequence, Tuple, Union

from ..logic.faults import Fault, MultipleFault, fault_overrides
from ..logic.gates import GateKind
from ..logic.network import Network

FaultLike = Union[Fault, MultipleFault]


def reference_gate(kind: GateKind, values: Sequence[int]) -> int:
    """Gate semantics re-derived from the definitions via one-counting."""
    ones = sum(1 for v in values if v)
    total = len(values)
    if kind is GateKind.CONST0:
        return 0
    if kind is GateKind.CONST1:
        return 1
    if kind is GateKind.BUF:
        return 1 if values[0] else 0
    if kind is GateKind.NOT:
        return 0 if values[0] else 1
    if kind is GateKind.AND:
        return 1 if ones == total else 0
    if kind is GateKind.NAND:
        return 0 if ones == total else 1
    if kind is GateKind.OR:
        return 1 if ones > 0 else 0
    if kind is GateKind.NOR:
        return 0 if ones > 0 else 1
    if kind is GateKind.XOR:
        return ones & 1
    if kind is GateKind.XNOR:
        return 1 - (ones & 1)
    if kind is GateKind.MAJ:
        return 1 if 2 * ones > total else 0
    if kind is GateKind.MIN:
        return 1 if 2 * ones < total else 0
    raise ValueError(f"gate kind {kind} has no reference evaluation")


def reference_line_values(
    network: Network,
    point: Sequence[int],
    fault: Optional[FaultLike] = None,
) -> Dict[str, int]:
    """Evaluate every line at one input point, by plain topological walk.

    ``point[i]`` is the value of ``network.inputs[i]`` (the repo-wide
    bit-order convention).
    """
    stems: Dict[str, int] = {}
    pins: Dict[Tuple[str, int], int] = {}
    if fault is not None:
        stems, pins = fault_overrides(fault)
    values: Dict[str, int] = {}
    for i, name in enumerate(network.inputs):
        values[name] = stems.get(name, int(point[i]) & 1)
    for gate in network.gates:
        if gate.name in stems:
            values[gate.name] = stems[gate.name]
            continue
        operands: List[int] = [values[src] for src in gate.inputs]
        for slot in range(len(operands)):
            forced = pins.get((gate.name, slot))
            if forced is not None:
                operands[slot] = forced
        values[gate.name] = reference_gate(gate.kind, operands)
    return values


def reference_outputs(
    network: Network,
    point: Sequence[int],
    fault: Optional[FaultLike] = None,
) -> Tuple[int, ...]:
    """Output tuple at one input point under an optional fault."""
    values = reference_line_values(network, point, fault)
    return tuple(values[out] for out in network.outputs)


def point_tuple(n_inputs: int, index: int) -> Tuple[int, ...]:
    """Decode a truth-table index (bit *i* = input *i*)."""
    return tuple((index >> i) & 1 for i in range(n_inputs))


def reference_output_bits(
    network: Network, fault: Optional[FaultLike] = None
) -> Tuple[int, ...]:
    """Per-output truth-table bitmasks, accumulated one point at a time.

    The pointwise accumulation is the whole point: it cannot share a bug
    with the word-parallel bitmask backend it is checked against.
    """
    n = len(network.inputs)
    bits = [0] * len(network.outputs)
    for index in range(1 << n):
        outputs = reference_outputs(network, point_tuple(n, index), fault)
        for pos, value in enumerate(outputs):
            if value:
                bits[pos] |= 1 << index
    return tuple(bits)


def reference_is_self_dual(table_bits: int, n: int) -> bool:
    """Self-duality checked pointwise: F(X̄) = ¬F(X) for every X."""
    full = (1 << n) - 1
    for index in range(1 << n):
        value = (table_bits >> index) & 1
        mirror = (table_bits >> (index ^ full)) & 1
        if mirror != 1 - value:
            return False
    return True
